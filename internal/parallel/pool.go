package parallel

import (
	"fmt"
	"io"
	"sync"

	"streamxpath/internal/engine"
	"streamxpath/internal/limits"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
	"streamxpath/internal/symtab"
)

// replica is one complete engine copy of a Pool: every subscription, its
// own tokenizers and scratch. A replica is owned by exactly one Match
// call at a time (checked out of the idle ring), so its internals need no
// further synchronization.
type replica struct {
	eng  *engine.Engine
	tok  *sax.TokenizerBytes
	stok *sax.StreamTokenizer
	ids  []string
	// lim holds the budgets, stored per replica so Match calls read them
	// while holding only the replica (SetLimits writes under acquireAll).
	lim limits.Limits
	// fault, when non-nil, is invoked at the start of each Match call
	// inside the recovery region — the fault-injection hook of the
	// isolation tests.
	fault func()
}

// Pool is the document-parallel mode: n engine replicas, each carrying
// the full subscription set, matching whole documents independently.
// MatchBytes is safe to call from any number of goroutines — each call
// checks a replica out of the idle ring, matches, and returns it — so a
// feed's documents spread across cores with no coordination beyond the
// checkout. All replicas intern into one shared symtab.Table; a name
// seen by any replica is a warm lock-free probe for every other.
//
// Add and Remove apply to every replica. They acquire the whole pool
// (waiting for in-flight matches to finish), so subscription churn
// serializes against matching exactly as documents do in the sequential
// engine.
type Pool struct {
	tab  *symtab.Table
	idle chan *replica
	reps []*replica

	// mu serializes Add/Remove/Len/IDs against each other and guards the
	// last-call reader stats; matching only contends on the idle ring.
	mu     sync.Mutex
	order  []string
	rstats ReadStats
}

// NewPool returns a pool of n replicas (n < 1 is treated as 1).
func NewPool(n int) *Pool { return NewPoolTab(n, nil) }

// NewPoolTab is NewPool interning into tab (nil for a private table) —
// the hook the adaptive engine uses to bind its sharded and pooled
// halves to one symbol space.
func NewPoolTab(n int, tab *symtab.Table) *Pool {
	if n < 1 {
		n = 1
	}
	if tab == nil {
		tab = symtab.New()
	}
	p := &Pool{tab: tab, idle: make(chan *replica, n)}
	for i := 0; i < n; i++ {
		r := &replica{eng: engine.NewWithSymbols(p.tab)}
		p.reps = append(p.reps, r)
		p.idle <- r
	}
	return p
}

// Workers returns the replica count.
func (p *Pool) Workers() int { return len(p.reps) }

// SetLimits configures the per-document resource budgets on every
// replica (the zero value disables them). It acquires the whole pool, so
// budgets never change under an in-flight match.
func (p *Pool) SetLimits(l limits.Limits) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquireAll()
	defer p.releaseAll()
	for _, r := range p.reps {
		r.lim = l
		r.eng.SetLimits(l)
		if r.tok != nil {
			r.tok.SetLimits(l)
		}
		if r.stok != nil {
			r.stok.SetLimits(l)
		}
	}
}

// Limits returns the configured budgets.
func (p *Pool) Limits() limits.Limits {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reps[0].lim
}

// matchedSoFar snapshots the replica's definitively matched ids — on an
// error mid-document these are still final (matching is monotone), and
// the public abstain policy degrades to them.
func matchedSoFar(r *replica) []string {
	r.ids = r.eng.AppendMatchedIDs(r.ids[:0])
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// acquireAll checks every replica out of the idle ring, waiting for
// in-flight matches to complete. The caller must releaseAll.
func (p *Pool) acquireAll() {
	for range p.reps {
		<-p.idle
	}
}

func (p *Pool) releaseAll() {
	for _, r := range p.reps {
		p.idle <- r
	}
}

// Add registers a subscription on every replica. The same compiled query
// drives each replica's engine (compile products are per-engine, the
// query tree itself is immutable), so a validation failure is identical
// across replicas and the pool stays consistent.
func (p *Pool) Add(id string, q *query.Query) error {
	return p.add(id, q, false)
}

// AddExtract registers a subscription with fragment extraction enabled
// on every replica; the Frags match variants capture and return its
// matched subtree.
func (p *Pool) AddExtract(id string, q *query.Query) error {
	return p.add(id, q, true)
}

func (p *Pool) add(id string, q *query.Query, extract bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquireAll()
	defer p.releaseAll()
	var first error
	for _, r := range p.reps {
		var err error
		if extract {
			err = r.eng.AddExtract(id, q)
		} else {
			err = r.eng.Add(id, q)
		}
		if err != nil {
			first = err
			break
		}
	}
	if first != nil {
		return first
	}
	p.order = append(p.order, id)
	return nil
}

// Remove deregisters a subscription from every replica, reporting whether
// it existed.
func (p *Pool) Remove(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquireAll()
	defer p.releaseAll()
	existed := false
	for _, r := range p.reps {
		if r.eng.Remove(id) {
			existed = true
		}
	}
	if existed {
		for i, have := range p.order {
			if have == id {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
	}
	return existed
}

// Len returns the number of subscriptions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.order)
}

// IDs returns the subscription ids in insertion order.
func (p *Pool) IDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// MatchBytes matches one in-memory document on a checked-out replica and
// returns the matching subscription ids in insertion order. Unlike the
// sequential FilterSet the returned slice is freshly allocated — calls
// run concurrently, so no shared result buffer exists to reuse. A panic
// inside the replica fails only this document with a typed *PanicError
// and quarantines the replica's engine (rebuilt from its subscription
// list at the next checkout); errors mid-document still carry the
// verdicts decided before the failure.
func (p *Pool) MatchBytes(doc []byte) ([]string, error) {
	ids, _, err := p.matchBytes(doc, engine.CaptureOff)
	return ids, err
}

// MatchBytesFrags is MatchBytes additionally returning the captured
// subtrees of matched extraction subscriptions, in subscription
// insertion order. Non-volatile fragments are zero-copy subslices of
// doc; volatile ones (attribute values) are copied before the replica
// returns to the ring, so fragments never alias replica scratch.
func (p *Pool) MatchBytesFrags(doc []byte) ([]string, []engine.Fragment, error) {
	return p.matchBytes(doc, engine.CaptureSlice)
}

// fragsOf collects a replica's fragments and copies the volatile ones.
// Must run while the caller still holds the replica: volatile data
// aliases engine-internal buffers the next document overwrites.
func fragsOf(r *replica, doc []byte, mode engine.CaptureMode) []engine.Fragment {
	if mode == engine.CaptureOff {
		return nil
	}
	frags := r.eng.AppendFragments(nil, doc)
	engine.CopyVolatileFragments(frags)
	return frags
}

func (p *Pool) matchBytes(doc []byte, mode engine.CaptureMode) (ids []string, frags []engine.Fragment, err error) {
	r := <-p.idle
	defer func() { p.idle <- r }()
	// Declared after the checkout-return defer, so on a panic this runs
	// FIRST: the replica is quarantined before it re-enters the ring.
	defer func() {
		if rec := recover(); rec != nil {
			r.eng.Rebuild()
			ids, frags, err = nil, nil, newPanicError(rec)
		}
	}()
	if l := r.lim.MaxDocBytes; l > 0 && int64(len(doc)) > l {
		return nil, nil, fmt.Errorf("streamxpath: %w",
			&limits.Error{Resource: "doc-bytes", Limit: l, Observed: int64(len(doc))})
	}
	r.eng.SetCapture(mode)
	r.eng.Reset()
	if r.tok == nil {
		r.tok = sax.NewTokenizerBytes(doc, p.tab)
		r.tok.SetLimits(r.lim)
	} else {
		r.tok.Reset(doc)
	}
	if r.fault != nil {
		r.fault()
	}
	sawEnd := false
	for {
		ev, err := r.tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return matchedSoFar(r), fragsOf(r, doc, mode), err
		}
		if ev.Kind == sax.EndDocument {
			sawEnd = true
		}
		if err := r.eng.ProcessBytes(ev); err != nil {
			return matchedSoFar(r), fragsOf(r, doc, mode), fmt.Errorf("streamxpath: %w", err)
		}
	}
	if !sawEnd {
		return nil, nil, fmt.Errorf("streamxpath: document ended prematurely")
	}
	return matchedSoFar(r), fragsOf(r, doc, mode), nil
}

// MatchReader streams one document from r on a checked-out replica
// through the chunked resumable tokenizer (chunkSize <= 0 selects
// sax.DefaultChunkSize): sequential bounded-memory matching with
// mid-stream early exit, document-parallel across concurrent calls.
func (p *Pool) MatchReader(r io.Reader, chunkSize int) ([]string, error) {
	ids, _, rs, err := p.matchReader(r, chunkSize, engine.CaptureOff)
	p.mu.Lock()
	p.rstats = rs
	p.mu.Unlock()
	return ids, err
}

// MatchReaderFrags is MatchReader additionally returning the captured
// subtrees of matched extraction subscriptions, re-serialized to
// canonical form (the input is never buffered whole). All fragments are
// freshly allocated.
func (p *Pool) MatchReaderFrags(r io.Reader, chunkSize int) ([]string, []engine.Fragment, ReadStats, error) {
	ids, frags, rs, err := p.matchReader(r, chunkSize, engine.CaptureSerial)
	p.mu.Lock()
	p.rstats = rs
	p.mu.Unlock()
	return ids, frags, rs, err
}

// ReadStats returns the input accounting of the last MatchReader call.
func (p *Pool) ReadStats() ReadStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rstats
}

// matchReader is MatchReader returning this call's accounting directly
// (concurrent calls make the stored "last call" stats ambiguous; the
// adaptive engine needs its own call's numbers). Panic isolation and
// partial-verdict error returns work as in MatchBytes.
func (p *Pool) matchReader(r io.Reader, chunkSize int, mode engine.CaptureMode) (ids []string, frags []engine.Fragment, rs ReadStats, err error) {
	var ss sax.StreamStats
	rep := <-p.idle
	defer func() { p.idle <- rep }()
	defer func() {
		if rec := recover(); rec != nil {
			rep.eng.Rebuild()
			ids, frags, rs, err = nil, nil, fromStream(ss), newPanicError(rec)
		}
	}()
	rep.eng.SetCapture(mode)
	rep.eng.Reset()
	if rep.stok == nil {
		rep.stok = sax.NewStreamTokenizer(p.tab)
		rep.stok.SetLimits(rep.lim)
	} else {
		rep.stok.Reset()
	}
	if rep.fault != nil {
		rep.fault()
	}
	process := func(ev sax.ByteEvent) error {
		if err := rep.eng.ProcessBytes(ev); err != nil {
			return fmt.Errorf("streamxpath: %w", err)
		}
		return nil
	}
	sawEnd, err := rep.stok.Drive(r, chunkSize, &ss, process, nil, rep.eng.Decided)
	rs = fromStream(ss)
	if err != nil {
		return matchedSoFar(rep), fragsOf(rep, nil, mode), rs, err
	}
	if !sawEnd && !rs.EarlyExit {
		return nil, nil, rs, fmt.Errorf("streamxpath: document ended prematurely")
	}
	out := matchedSoFar(rep)
	rs.DecidedNegative = rs.EarlyExit && len(out) < rep.eng.Len()
	return out, fragsOf(rep, nil, mode), rs, nil
}

// Symbols returns the shared symbol table.
func (p *Pool) Symbols() *symtab.Table { return p.tab }

// Stats returns one replica's engine statistics (replicas are identical
// in structure; per-document work reflects that replica's last match).
func (p *Pool) Stats() engine.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquireAll()
	defer p.releaseAll()
	return p.reps[0].eng.Stats()
}

// MemStats returns the live-memory accounting of the busiest replica's
// last document (with concurrent matching no single replica saw "the"
// last document; the busiest one is the most informative sample).
func (p *Pool) MemStats() engine.MemStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquireAll()
	defer p.releaseAll()
	var out engine.MemStats
	for _, r := range p.reps {
		if ms := r.eng.MemStats(); ms.Events > out.Events {
			out = ms
		}
	}
	return out
}
