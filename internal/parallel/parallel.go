// Package parallel implements the parallel sharded dissemination engine:
// the multi-core scaling layer over internal/engine.
//
// The sequential engine is single-threaded by design — one symbol table,
// one frontier — and PR 2 pushed its per-event cost to ~50-100ns with
// zero steady-state allocations, so the next order of magnitude in
// subscription throughput is cores, not constants. This package supplies
// the two classic ways to spend them:
//
//   - Sharded (event-sharded, one document at a time): subscriptions are
//     hash-partitioned across N independent engine.Engine shards that all
//     bind to ONE shared symtab.Table. A document is tokenized once, on
//     the interned-symbol byte fast path, by the calling goroutine; the
//     resulting symbol events are broadcast to per-shard worker
//     goroutines through reusable refcounted batches, so every shard
//     matches its subscription subset concurrently over the same event
//     stream. Per-shard match sets are merged back into the global
//     subscription insertion order, yielding results byte-identical to
//     the sequential FilterSet. This mode parallelizes a single large
//     document against a large subscription set.
//
//   - Pool (document-parallel): a worker pool of complete engine
//     replicas, each carrying every subscription and matching whole
//     documents independently — embarrassingly parallel, for feed
//     workloads where documents arrive faster than one core can match
//     them. Replicas share the same symtab.Table too, so a feed's name
//     vocabulary is interned once no matter which replica sees a name
//     first.
//
// Sharing one symbol table is what makes both modes cheap: symtab.Table
// is copy-on-write (see its package comment), so the shards' hot loops
// read symbols lock-free while interning — the only write, and only on
// the first sight of a name — stays off the steady-state path entirely.
package parallel

import (
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"streamxpath/internal/engine"
	"streamxpath/internal/limits"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
	"streamxpath/internal/symtab"
)

// PanicError reports a panic recovered inside a parallel worker (a shard
// goroutine or a pool replica). The in-flight document fails with this
// error; the worker's engine is quarantined and rebuilt from its intact
// subscription list before the next document, so the set stays usable.
type PanicError struct {
	// Recovered is the value the panic carried.
	Recovered any
	// Stack is the panicking goroutine's stack trace, captured at the
	// recovery site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: recovered panic in worker: %v", e.Recovered)
}

// newPanicError wraps a recovered value for the public error chain.
func newPanicError(rec any) error {
	return fmt.Errorf("streamxpath: %w", &PanicError{Recovered: rec, Stack: debug.Stack()})
}

// shard is one subscription partition: a sequential engine plus the ring
// the tokenizer feeds it through. Engines are touched only by their
// worker goroutine during a document and only by the caller between
// documents (the per-document WaitGroup orders the two).
type shard struct {
	eng *engine.Engine
	in  chan *batch
	err error    // first processing error of the current document
	ids []string // per-document scratch for AppendMatchedIDs
	// decided is published by the worker after each batch once every
	// subscription of this shard has matched; the streaming producer
	// polls it between chunks to stop reading input early. Reset by the
	// producer before the document's first dispatch.
	decided atomic.Bool
	// fault, when non-nil, is invoked once per processed batch inside the
	// worker's panic-recovery region — the fault-injection hook the
	// isolation tests use to simulate an engine bug.
	fault func()
}

// Sharded is the event-sharded engine. Construct with NewSharded, add
// subscriptions, then match documents; Close releases the worker
// goroutines. Add, Remove and Match* calls are mutually serialized (one
// document at a time — the parallelism is across shards within the
// document); use Pool to match several documents concurrently.
type Sharded struct {
	mu     sync.Mutex
	tab    *symtab.Table
	shards []*shard

	// order is the global subscription insertion order; index maps id to
	// its position. Per-shard verdicts are merged through index so results
	// come out identical to the sequential engine's.
	order []string
	index map[string]int

	// free recycles batches; alloc counts those created, capped at ringCap
	// so a slow shard exerts backpressure instead of growing the heap.
	free  chan *batch
	alloc int

	wg      sync.WaitGroup // completion of the in-flight document
	workers sync.WaitGroup // shard goroutine lifetimes, for Close
	closed  bool

	tok     *sax.TokenizerBytes
	matched []bool
	ids     []string

	// lim holds the per-document resource budgets, mirrored into every
	// shard engine and the tokenizers (zero value: none).
	lim limits.Limits

	// Streaming state of MatchReader: the resumable chunked tokenizer,
	// the last call's input accounting, and the per-document state the
	// cached Drive callbacks operate on (curB is the batch being filled;
	// the callbacks are built once so repeat calls allocate nothing).
	stok       *sax.StreamTokenizer
	rstats     ReadStats
	curB       *batch
	needTextMR bool
	dispatched bool
	canDecide  bool
	procCb     func(sax.ByteEvent) error
	chunkCb    func()
	decCb      func() bool
}

// ReadStats is the input accounting of the last MatchReader call. It is
// field-compatible with streamxpath.ReaderStats (the public layer
// converts directly).
type ReadStats struct {
	// BytesRead is the number of bytes read from the io.Reader.
	BytesRead int64
	// BytesConsumed is the number of document bytes fully tokenized.
	BytesConsumed int64
	// Chunks is the number of non-empty reads.
	Chunks int
	// EarlyExit reports that reading stopped before end of input because
	// every verdict was decided.
	EarlyExit bool
	// DecidedNegative refines EarlyExit: at least one subscription's
	// verdict was decided negatively (it can never match the document).
	DecidedNegative bool
	// Abstained reports that a resource budget was breached and the
	// abstain policy degraded the result to the verdicts decided before
	// the breach (set by the public layer).
	Abstained bool
}

// fromStream fills the Drive-level accounting; DecidedNegative is
// settled by the caller once the verdicts are merged.
func fromStream(ss sax.StreamStats) ReadStats {
	return ReadStats{
		BytesRead:     ss.BytesRead,
		BytesConsumed: ss.BytesConsumed,
		Chunks:        ss.Chunks,
		EarlyExit:     ss.EarlyExit,
	}
}

// NewSharded returns an engine with n shards (n < 1 is treated as 1).
func NewSharded(n int) *Sharded { return NewShardedTab(n, nil) }

// NewShardedTab is NewSharded interning into tab (nil for a private
// table) — the hook the adaptive engine uses to bind its sharded and
// pooled halves to one symbol space.
func NewShardedTab(n int, tab *symtab.Table) *Sharded {
	if n < 1 {
		n = 1
	}
	if tab == nil {
		tab = symtab.New()
	}
	s := &Sharded{
		tab:   tab,
		index: map[string]int{},
		free:  make(chan *batch, ringCap),
	}
	for i := 0; i < n; i++ {
		sh := &shard{
			eng: engine.NewWithSymbols(s.tab),
			in:  make(chan *batch, ringCap),
		}
		s.shards = append(s.shards, sh)
		s.workers.Add(1)
		go s.run(sh)
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// SetLimits configures the per-document resource budgets on every shard
// engine and the tokenizers (the zero value disables them). A breach
// fails only the in-flight document with a *limits.Error; the set stays
// usable.
func (s *Sharded) SetLimits(l limits.Limits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lim = l
	for _, sh := range s.shards {
		sh.eng.SetLimits(l)
	}
	if s.tok != nil {
		s.tok.SetLimits(l)
	}
	if s.stok != nil {
		s.stok.SetLimits(l)
	}
}

// Limits returns the configured budgets.
func (s *Sharded) Limits() limits.Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lim
}

// Symbols returns the shared symbol table.
func (s *Sharded) Symbols() *symtab.Table { return s.tab }

// shardOf assigns a subscription id to a shard by FNV-1a hash, so the
// partition is stable under Add/Remove churn.
func (s *Sharded) shardOf(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Add registers a subscription under the given id on its hash shard. The
// query must already be compiled; validation errors surface exactly as
// from the sequential engine.
func (s *Sharded) Add(id string, q *query.Query) error {
	return s.add(id, q, false)
}

// AddExtract registers a subscription with fragment extraction enabled;
// the Frags match variants capture and return its matched subtree.
func (s *Sharded) AddExtract(id string, q *query.Query) error {
	return s.add(id, q, true)
}

func (s *Sharded) add(id string, q *query.Query, extract bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if _, dup := s.index[id]; dup {
		return fmt.Errorf("engine: duplicate subscription id %q", id)
	}
	var err error
	if extract {
		err = s.shardOf(id).eng.AddExtract(id, q)
	} else {
		err = s.shardOf(id).eng.Add(id, q)
	}
	if err != nil {
		return err
	}
	s.index[id] = len(s.order)
	s.order = append(s.order, id)
	return nil
}

// Remove deregisters a subscription, reporting whether it existed.
func (s *Sharded) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[id]
	if !ok {
		return false
	}
	s.shardOf(id).eng.Remove(id)
	s.order = append(s.order[:i], s.order[i+1:]...)
	delete(s.index, id)
	for j := i; j < len(s.order); j++ {
		s.index[s.order[j]] = j
	}
	return true
}

// Len returns the number of subscriptions.
func (s *Sharded) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// IDs returns the subscription ids in insertion order.
func (s *Sharded) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

var errClosed = fmt.Errorf("parallel: engine is closed")

// getBatch obtains an empty batch: recycled if one is free, fresh while
// under the ring budget, otherwise blocking until a shard releases one.
func (s *Sharded) getBatch() *batch {
	select {
	case b := <-s.free:
		b.reset()
		return b
	default:
	}
	if s.alloc < ringCap {
		s.alloc++
		return newBatch()
	}
	b := <-s.free
	b.reset()
	return b
}

// dispatch broadcasts a filled batch to every shard.
func (s *Sharded) dispatch(b *batch) {
	b.refs.Store(int32(len(s.shards)))
	for _, sh := range s.shards {
		sh.in <- b
	}
}

// run is the shard worker loop: reset on a document's first batch,
// process records through the sequential engine, recycle the batch, and
// signal document completion on the last one. On a processing error the
// shard keeps draining (the tokenizer must never block on a wedged ring)
// and reports the error after the document completes. Batch release and
// the completion signal stay OUT of processBatch's recovered region, so
// even a panicking engine cannot wedge the broadcast ring or leak the
// document WaitGroup.
func (s *Sharded) run(sh *shard) {
	defer s.workers.Done()
	for b := range sh.in {
		s.processBatch(sh, b)
		last := b.last
		if b.release() {
			s.free <- b
		}
		if last {
			s.wg.Done()
		}
	}
}

// processBatch runs one batch through the shard's engine under panic
// isolation: a recovered panic fails only the in-flight document, with a
// typed *PanicError carrying the recovered value and stack, and
// quarantines the shard's engine — Rebuild discards the matching state of
// unknown integrity wholesale, and the next document recompiles from the
// intact subscription list.
func (s *Sharded) processBatch(sh *shard, b *batch) {
	defer func() {
		if rec := recover(); rec != nil {
			sh.err = newPanicError(rec)
			sh.eng.Rebuild()
		}
	}()
	if b.first {
		sh.eng.Reset()
		sh.err = nil
	}
	if sh.err != nil || b.abort {
		return
	}
	if sh.fault != nil {
		sh.fault()
	}
	for i := range b.recs {
		if err := sh.eng.ProcessBytes(b.event(i)); err != nil {
			sh.err = fmt.Errorf("streamxpath: %w", err)
			return
		}
	}
	// Publish this shard's early decision so a streaming producer can
	// stop reading input once every shard has one. A shard with no
	// subscriptions is trivially decided.
	if !sh.decided.Load() && (sh.eng.Len() == 0 || sh.eng.Decided()) {
		sh.decided.Store(true)
	}
}

// setCapture mirrors a capture mode into every shard engine. Safe under
// s.mu between documents: the engines are idle, and the mode takes
// effect at the worker's Reset on the document's first batch.
func (s *Sharded) setCapture(mode engine.CaptureMode) {
	for _, sh := range s.shards {
		sh.eng.SetCapture(mode)
	}
}

// collectFrags merges the shards' captured fragments back into the
// global subscription insertion order and copies the volatile ones
// (serial captures and attribute values alias engine-internal buffers
// that the next document overwrites). Called after finishDoc — the
// document WaitGroup has ordered the shard engines quiescent. doc is
// the whole-buffer document for slice-mode captures, nil on the reader
// path. The result is freshly allocated per call: fragments outlive
// the engine's scratch by design.
func (s *Sharded) collectFrags(doc []byte) []engine.Fragment {
	byPos := make([]engine.Fragment, len(s.order))
	seen := make([]bool, len(s.order))
	n := 0
	for _, sh := range s.shards {
		for _, f := range sh.eng.AppendFragments(nil, doc) {
			if i, ok := s.index[f.ID]; ok && !seen[i] {
				byPos[i] = f
				seen[i] = true
				n++
			}
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]engine.Fragment, 0, n)
	for i := range byPos {
		if seen[i] {
			out = append(out, byPos[i])
		}
	}
	engine.CopyVolatileFragments(out)
	return out
}

// MatchBytes matches one in-memory document against every subscription:
// tokenized once on the calling goroutine, matched concurrently by the
// shards, merged into insertion order. The returned slice is reused by
// the next call — copy it if it must outlive the call. It is non-nil
// even when empty.
func (s *Sharded) MatchBytes(doc []byte) ([]string, error) {
	ids, _, err := s.matchBytes(doc, engine.CaptureOff)
	return ids, err
}

// MatchBytesFrags is MatchBytes additionally returning the captured
// subtrees of matched extraction subscriptions, in subscription
// insertion order. Fragments of non-volatile origin are zero-copy
// subslices of doc; the rest (attribute values, shared-capture copies)
// are freshly allocated. The ids slice is reused by the next call; the
// fragments are not.
func (s *Sharded) MatchBytesFrags(doc []byte) ([]string, []engine.Fragment, error) {
	return s.matchBytes(doc, engine.CaptureSlice)
}

func (s *Sharded) matchBytes(doc []byte, mode engine.CaptureMode) ([]string, []engine.Fragment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, errClosed
	}
	if l := s.lim.MaxDocBytes; l > 0 && int64(len(doc)) > l {
		return nil, nil, fmt.Errorf("streamxpath: %w",
			&limits.Error{Resource: "doc-bytes", Limit: l, Observed: int64(len(doc))})
	}
	if s.tok == nil {
		s.tok = sax.NewTokenizerBytes(doc, s.tab)
		s.tok.SetLimits(s.lim)
	} else {
		s.tok.Reset(doc)
	}
	s.setCapture(mode)
	needText := s.needText()
	s.wg.Add(len(s.shards))
	b := s.getBatch()
	b.first = true
	sawEnd := false
	var tokErr error
	// The tokenize loop runs under its own recover: once wg.Add has run,
	// a producer-side panic abandoned mid-document would leak the
	// document WaitGroup and wedge every later call — so it degrades to a
	// failed document instead, with the abort batch still dispatched.
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				tokErr = newPanicError(rec)
			}
		}()
		for {
			ev, err := s.tok.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				tokErr = err
				break
			}
			if ev.Kind == sax.EndDocument {
				sawEnd = true
			}
			b.add(ev, needText)
			if b.full() {
				s.dispatch(b)
				b = s.getBatch()
			}
		}
	}()
	if tokErr == nil && !sawEnd {
		tokErr = fmt.Errorf("streamxpath: document ended prematurely")
	}
	ids, err := s.finishDoc(b, tokErr)
	var frags []engine.Fragment
	if mode != engine.CaptureOff {
		// Even on a degraded (abstained) document, captures that finalized
		// before the failure are definitive — return them alongside the
		// partial verdicts. Unfinalized captures are skipped by the engine.
		frags = s.collectFrags(doc)
	}
	return ids, frags, err
}

// needText reports whether any shard reads character data (a
// value-restricted predicate leaf exists), so text payloads must ship in
// the batches. NeedsText compiles dirty engines here, on the calling
// goroutine, while the shards are idle.
func (s *Sharded) needText() bool {
	for _, sh := range s.shards {
		if sh.eng.NeedsText() {
			return true
		}
	}
	return false
}

// finishDoc dispatches the final batch (flagged abort on a tokenization
// error), waits for the shards, and surfaces the first error or the
// merged verdicts. On an error the merged verdicts decided BEFORE the
// failure are still returned alongside it — matching is monotone, so
// they are definitive, and the public abstain policy degrades to them. A
// shard quarantined by a panic reports no verdicts (its state was
// discarded), which only makes the partial result smaller, never wrong.
func (s *Sharded) finishDoc(b *batch, tokErr error) ([]string, error) {
	b.last = true
	b.abort = tokErr != nil
	s.dispatch(b)
	s.wg.Wait()
	if tokErr != nil {
		return s.merge(), tokErr
	}
	for _, sh := range s.shards {
		if sh.err != nil {
			return s.merge(), sh.err
		}
	}
	return s.merge(), nil
}

// MatchReader streams one document from r, tokenizing it chunk by chunk
// (chunkSize <= 0 selects sax.DefaultChunkSize) on the calling goroutine
// and broadcasting event batches to the shard workers as they fill — so
// I/O, tokenization and matching overlap: the shards are matching the
// first batches while the rest of the document is still arriving, and
// nothing ever buffers the whole document. Results are identical to
// MatchBytes on the document's bytes. Between chunks the producer polls
// the shards' decided flags; once every shard has nothing left to prove
// — all its subscriptions matched, or the rest proven unable to match by
// the dead-state analysis — the reader is abandoned (ReadStats reports
// the early exit and whether it was negative) and the remainder goes
// unvalidated.
func (s *Sharded) MatchReader(r io.Reader, chunkSize int) ([]string, error) {
	ids, _, _, err := s.matchReader(r, chunkSize, engine.CaptureOff)
	return ids, err
}

// MatchReaderFrags is MatchReader additionally returning the captured
// subtrees of matched extraction subscriptions, re-serialized to
// canonical form (the input is never buffered whole, so zero-copy
// slicing is impossible on this path). All fragments are freshly
// allocated. Early exit waits for open captures to finalize before
// abandoning the reader.
func (s *Sharded) MatchReaderFrags(r io.Reader, chunkSize int) ([]string, []engine.Fragment, ReadStats, error) {
	return s.matchReader(r, chunkSize, engine.CaptureSerial)
}

// matchReader is MatchReader returning this call's accounting directly
// (concurrent callers make the stored "last call" stats ambiguous; the
// adaptive engine needs its own call's numbers).
func (s *Sharded) matchReader(r io.Reader, chunkSize int, mode engine.CaptureMode) ([]string, []engine.Fragment, ReadStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ReadStats{}, errClosed
	}
	if s.stok == nil {
		s.stok = sax.NewStreamTokenizer(s.tab)
		s.stok.SetLimits(s.lim)
		// The Drive callbacks operate on per-document fields of s (one
		// document runs at a time under s.mu), built once so repeat
		// calls allocate nothing: procCb batches events (dispatching
		// full batches), chunkCb flushes the partial batch at each chunk
		// boundary — the shards start matching this chunk's events while
		// the next chunk is being read — and decCb reports whether every
		// shard has published an early decision for dispatched input.
		s.procCb = func(ev sax.ByteEvent) error {
			s.curB.add(ev, s.needTextMR)
			if s.curB.full() {
				s.dispatch(s.curB)
				s.dispatched = true
				s.curB = s.getBatch()
			}
			return nil
		}
		s.chunkCb = func() {
			if len(s.curB.recs) > 0 {
				s.dispatch(s.curB)
				s.dispatched = true
				s.curB = s.getBatch()
			}
		}
		s.decCb = func() bool {
			return s.canDecide && s.dispatched && s.allDecided()
		}
	} else {
		s.stok.Reset()
	}
	s.setCapture(mode)
	s.needTextMR = s.needText()
	for _, sh := range s.shards {
		sh.decided.Store(false)
	}
	s.canDecide = len(s.order) > 0
	s.dispatched = false
	s.wg.Add(len(s.shards))
	s.curB = s.getBatch()
	s.curB.first = true
	var ss sax.StreamStats
	var sawEnd bool
	var tokErr error
	// Same producer-side panic isolation as MatchBytes: after wg.Add, an
	// abandoned document would wedge every later call, so a panic in the
	// drive loop degrades to a failed document with the abort batch still
	// dispatched.
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if s.curB == nil {
					s.curB = s.getBatch()
				}
				tokErr = newPanicError(rec)
			}
		}()
		sawEnd, tokErr = s.stok.Drive(r, chunkSize, &ss, s.procCb, s.chunkCb, s.decCb)
	}()
	if tokErr == nil && !sawEnd && !ss.EarlyExit {
		tokErr = fmt.Errorf("streamxpath: document ended prematurely")
	}
	ids, err := s.finishDoc(s.curB, tokErr)
	s.curB = nil
	var frags []engine.Fragment
	if mode != engine.CaptureOff {
		frags = s.collectFrags(nil)
	}
	s.rstats = fromStream(ss)
	if err == nil {
		s.rstats.DecidedNegative = s.rstats.EarlyExit && len(ids) < len(s.order)
	}
	return ids, frags, s.rstats, err
}

// allDecided reports whether every shard has published an early
// decision for the current document.
func (s *Sharded) allDecided() bool {
	for _, sh := range s.shards {
		if !sh.decided.Load() {
			return false
		}
	}
	return true
}

// ReadStats returns the input accounting of the last MatchReader call.
func (s *Sharded) ReadStats() ReadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rstats
}

// merge folds the per-shard verdict sets back into the global insertion
// order. The sweep is O(subscriptions), the same per-document term the
// sequential engine's AppendMatchedIDs already pays.
func (s *Sharded) merge() []string {
	if len(s.matched) != len(s.order) {
		s.matched = make([]bool, len(s.order))
	} else {
		for i := range s.matched {
			s.matched[i] = false
		}
	}
	for _, sh := range s.shards {
		sh.ids = sh.eng.AppendMatchedIDs(sh.ids[:0])
		for _, id := range sh.ids {
			s.matched[s.index[id]] = true
		}
	}
	if s.ids == nil {
		s.ids = make([]string, 0, 8)
	}
	s.ids = s.ids[:0]
	for i, id := range s.order {
		if s.matched[i] {
			s.ids = append(s.ids, id)
		}
	}
	return s.ids
}

// Stats aggregates the shard engines' statistics: sizes and work counts
// sum; MaxLevel is the maximum. Pending Add/Remove calls are compiled
// first.
func (s *Sharded) Stats() engine.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out engine.Stats
	for _, sh := range s.shards {
		st := sh.eng.Stats()
		out.Subscriptions += st.Subscriptions
		out.NFARouted += st.NFARouted
		out.TrieRouted += st.TrieRouted
		out.SpineSteps += st.SpineSteps
		out.SharedStates += st.SharedStates
		out.PredNodes += st.PredNodes
		out.DFAStates += st.DFAStates
		out.DFATransitions += st.DFATransitions
		out.Events += st.Events
		out.TupleVisits += st.TupleVisits
		out.PeakTuples += st.PeakTuples
		out.PeakScopes += st.PeakScopes
		out.PeakBufferBytes += st.PeakBufferBytes
		if st.MaxLevel > out.MaxLevel {
			out.MaxLevel = st.MaxLevel
		}
	}
	return out
}

// MemStats aggregates the shards' live-memory accounting for the last
// document: component peaks and estimated bits sum across shards (each
// held its state concurrently), depth and the lower bound are maxima,
// and the optimality ratio is recomputed from the aggregates.
func (s *Sharded) MemStats() engine.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out engine.MemStats
	for _, sh := range s.shards {
		ms := sh.eng.MemStats()
		out.Events += ms.Events
		out.PeakLiveTuples += ms.PeakLiveTuples
		out.PeakScopes += ms.PeakScopes
		out.PeakPendings += ms.PeakPendings
		out.PeakBufferedBytes += ms.PeakBufferedBytes
		out.CapturedBytes += ms.CapturedBytes
		out.EstimatedBits += ms.EstimatedBits
		if ms.MaxDepth > out.MaxDepth {
			out.MaxDepth = ms.MaxDepth
		}
		if ms.LowerBoundBits > out.LowerBoundBits {
			out.LowerBoundBits = ms.LowerBoundBits
		}
	}
	if out.LowerBoundBits > 0 {
		out.OptimalityRatio = float64(out.EstimatedBits) / float64(out.LowerBoundBits)
	}
	return out
}

// Close stops the shard goroutines. The set is unusable afterwards;
// Close is idempotent.
func (s *Sharded) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.workers.Wait()
}
