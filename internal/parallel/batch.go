package parallel

import (
	"sync/atomic"

	"streamxpath/internal/sax"
	"streamxpath/internal/symtab"
)

// batchCap is the number of events carried per batch. Large enough that
// the per-batch synchronization (one channel send per shard, one atomic
// release) amortizes to well under a nanosecond per event; small enough
// that tokenization and matching pipeline within a single mid-sized
// document.
const batchCap = 1024

// batchTextCap caps the text arena: a batch is dispatched early once its
// arena reaches this size, so text-heavy documents split across more
// batches instead of growing one slab without bound. A single text event
// larger than the cap still fits (the arena grows to hold it for that
// one batch); reset releases such outliers.
const batchTextCap = 1 << 20

// ringCap bounds the number of batches in flight per document. The
// tokenizer blocks once all ringCap batches are queued on slow shards —
// natural backpressure that keeps in-flight memory bounded by
// ringCap × (batch slab + arena) no matter how large the document is.
const ringCap = 8

// rec is one event of a batch in shard-transport form. Text payloads
// live in the batch's arena as [off,end) ranges rather than slices: the
// arena's backing array may move while the batch is being filled, so
// aliases into it cannot be taken until processing time.
type rec struct {
	kind      sax.Kind
	attribute bool
	sym       symtab.Sym
	off, end  int
	// docOff preserves ByteEvent.Off (the event's absolute document
	// offset) across the transport, so shard engines can capture fragment
	// regions and serial captures stay ordered by document position.
	docOff int
}

// batch is the unit of event transport between the tokenizer and the
// shard goroutines: a fixed-capacity slab of event records plus a text
// arena holding copies of the volatile tokenizer payloads (scratch-buffer
// text would be overwritten by the time a shard reads it). One batch is
// broadcast to every shard; refs counts the shards still processing it,
// and the last one to finish recycles it through the free ring.
//
// Metadata (first/last/abort) is written by the producer before the
// channel sends and therefore safely visible to consumers.
type batch struct {
	recs  []rec
	text  []byte
	first bool // first batch of a document: shards reset before processing
	last  bool // last batch of a document: shards signal completion after it
	abort bool // tokenization failed: skip processing, complete the document
	refs  atomic.Int32
}

func newBatch() *batch {
	return &batch{recs: make([]rec, 0, batchCap)}
}

// reset prepares a recycled batch for refilling. The record slab is
// fixed-size and kept; the text arena is kept only while modest, so one
// outlier document (a giant single text event) does not pin its arena
// in the free ring for the engine's lifetime.
func (b *batch) reset() {
	b.recs = b.recs[:0]
	if cap(b.text) > 2*batchTextCap {
		b.text = nil
	} else {
		b.text = b.text[:0]
	}
	b.first, b.last, b.abort = false, false, false
}

// add appends one tokenizer event, copying any text payload into the
// arena (the tokenizer's Data slices alias scratch buffers that the next
// Next call overwrites). With copyText false the payload is dropped —
// the caller has established that no shard reads character data — while
// the event itself still ships, keeping event counts and document
// structure identical.
func (b *batch) add(ev sax.ByteEvent, copyText bool) {
	r := rec{kind: ev.Kind, attribute: ev.Attribute, sym: ev.Sym, docOff: ev.Off}
	if copyText && len(ev.Data) > 0 {
		r.off = len(b.text)
		b.text = append(b.text, ev.Data...)
		r.end = len(b.text)
	}
	b.recs = append(b.recs, r)
}

func (b *batch) full() bool {
	return len(b.recs) >= batchCap || len(b.text) >= batchTextCap
}

// event reconstructs record i as a ByteEvent whose Data aliases the
// (now stable) arena.
func (b *batch) event(i int) sax.ByteEvent {
	r := &b.recs[i]
	ev := sax.ByteEvent{Kind: r.kind, Sym: r.sym, Attribute: r.attribute, Off: r.docOff}
	if r.end > r.off {
		ev.Data = b.text[r.off:r.end]
	}
	return ev
}

// release decrements the broadcast refcount, reporting whether this
// caller was the last user and now owns the batch for recycling.
func (b *batch) release() bool { return b.refs.Add(-1) == 0 }
