// Adaptive mode selection. BENCH_pr3 showed the event-sharded engine's
// per-document fan-out cost (batch broadcast, per-shard reset, merge)
// dominating on small documents, where a single engine finishes before
// the fan-out amortizes; conversely one core is the wrong shape for a
// large document against a large subscription set. Auto holds both
// engines on one symbol table and routes each document by size.
package parallel

import (
	"bytes"
	"io"
	"sync"

	"streamxpath/internal/engine"
	"streamxpath/internal/limits"
	"streamxpath/internal/query"
	"streamxpath/internal/symtab"
)

// Default thresholds of the adaptive policy. A document smaller than
// AutoSizeThreshold — or a subscription set smaller than AutoMinSubs,
// where per-shard work is too thin to amortize the broadcast — matches
// on a pooled replica (document-parallel shape, no fan-out overhead);
// everything else goes to the event-sharded engine.
const (
	AutoSizeThreshold = 32 << 10
	AutoMinSubs       = 256
)

// Auto is the adaptive dissemination engine: an event-sharded engine and
// a replica pool over the same subscriptions and ONE shared symbol
// table, with each Match call routed by the policy above. Readers are
// routed by peeking: the first AutoSizeThreshold bytes are staged, and
// only a document that proves larger is streamed through the sharded
// chunked path (the staged prefix replayed first). Both halves hold a
// full compiled index, so Auto trades ~2x index memory for never paying
// fan-out overhead on small documents.
type Auto struct {
	sh   *Sharded
	pool *Pool

	// sizeThreshold/minSubs are the routing thresholds (defaults above).
	sizeThreshold int
	minSubs       int

	// staging recycles MatchReader peek buffers. Staging is per call (not
	// a shared field) so pool-routed readers run concurrently — the whole
	// point of the pool shape.
	staging sync.Pool

	// mu guards only the last-call bookkeeping.
	mu       sync.Mutex
	rstats   ReadStats
	lastMode string
}

// NewAuto returns an adaptive engine with n shards and n pool replicas
// (n < 1 selects 1). sizeThreshold/minSubs <= 0 select the defaults.
func NewAuto(n, sizeThreshold, minSubs int) *Auto {
	if sizeThreshold <= 0 {
		sizeThreshold = AutoSizeThreshold
	}
	if minSubs <= 0 {
		minSubs = AutoMinSubs
	}
	tab := symtab.New()
	return &Auto{
		sh:            NewShardedTab(n, tab),
		pool:          NewPoolTab(n, tab),
		sizeThreshold: sizeThreshold,
		minSubs:       minSubs,
	}
}

// Add registers a subscription on both halves.
func (a *Auto) Add(id string, q *query.Query) error {
	if err := a.sh.Add(id, q); err != nil {
		return err
	}
	if err := a.pool.Add(id, q); err != nil {
		// Validation is identical on both halves, so a pool failure here
		// means a duplicate-id race the Sharded half already guarded; keep
		// them consistent regardless.
		a.sh.Remove(id)
		return err
	}
	return nil
}

// AddExtract registers a subscription with fragment extraction enabled
// on both halves; the Frags match variants capture and return its
// matched subtree whichever engine the policy routes to.
func (a *Auto) AddExtract(id string, q *query.Query) error {
	if err := a.sh.AddExtract(id, q); err != nil {
		return err
	}
	if err := a.pool.AddExtract(id, q); err != nil {
		a.sh.Remove(id)
		return err
	}
	return nil
}

// Remove deregisters a subscription from both halves.
func (a *Auto) Remove(id string) bool {
	ok := a.sh.Remove(id)
	a.pool.Remove(id)
	return ok
}

// Len returns the number of subscriptions.
func (a *Auto) Len() int { return a.sh.Len() }

// IDs returns the subscription ids in insertion order.
func (a *Auto) IDs() []string { return a.sh.IDs() }

// Shards returns the shard count of the event-sharded half.
func (a *Auto) Shards() int { return a.sh.Shards() }

// Symbols returns the shared symbol table.
func (a *Auto) Symbols() *symtab.Table { return a.sh.Symbols() }

// SetLimits configures the per-document resource budgets on both halves,
// so the policy's routing decision never changes which budgets apply.
func (a *Auto) SetLimits(l limits.Limits) {
	a.sh.SetLimits(l)
	a.pool.SetLimits(l)
}

// Limits returns the configured budgets.
func (a *Auto) Limits() limits.Limits { return a.sh.Limits() }

// sharded reports whether a document of the given size should fan out.
func (a *Auto) sharded(docSize int) bool {
	return docSize >= a.sizeThreshold && a.sh.Len() >= a.minSubs
}

// setMode records the route taken by the last Match call.
func (a *Auto) setMode(mode string) {
	a.mu.Lock()
	a.lastMode = mode
	a.mu.Unlock()
}

// note records the route and input accounting of a MatchReader call.
func (a *Auto) note(mode string, rs ReadStats) {
	a.mu.Lock()
	a.lastMode = mode
	a.rstats = rs
	a.mu.Unlock()
}

// LastMode reports which engine the last Match call ran on: "shard" or
// "pool".
func (a *Auto) LastMode() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastMode
}

// MatchBytes matches one in-memory document on the engine the policy
// picks. The returned slice follows that engine's reuse contract: the
// pool route returns a fresh slice, the sharded route reuses its buffer.
func (a *Auto) MatchBytes(doc []byte) ([]string, error) {
	if a.sharded(len(doc)) {
		a.setMode("shard")
		return a.sh.MatchBytes(doc)
	}
	a.setMode("pool")
	return a.pool.MatchBytes(doc)
}

// MatchBytesFrags is MatchBytes additionally returning the captured
// subtrees of matched extraction subscriptions. Both routes capture
// zero-copy subslices of doc where possible; volatile fragments are
// copied before return.
func (a *Auto) MatchBytesFrags(doc []byte) ([]string, []engine.Fragment, error) {
	if a.sharded(len(doc)) {
		a.setMode("shard")
		return a.sh.MatchBytesFrags(doc)
	}
	a.setMode("pool")
	return a.pool.MatchBytesFrags(doc)
}

// MatchReader streams one document from r. The first sizeThreshold bytes
// are staged to learn the document's size class: a document that ends
// within them matches on a pooled replica; a larger one streams with the
// staged prefix replayed first — sequentially on a replica when the
// subscription set is below minSubs (bounded memory, no fan-out
// overhead), event-sharded otherwise (reading, tokenization and matching
// overlap). Nothing is ever buffered whole beyond the peek.
func (a *Auto) MatchReader(r io.Reader, chunkSize int) ([]string, error) {
	ids, _, _, err := a.matchReader(r, chunkSize, false)
	return ids, err
}

// MatchReaderFrags is MatchReader additionally returning the captured
// subtrees of matched extraction subscriptions, re-serialized to
// canonical form on every route (the staging buffer is recycled, so
// even a fully staged document cannot hand out aliases into it). All
// fragments are freshly allocated. The returned ReadStats is this
// call's own input accounting (the ReadStats accessor carries last-call
// semantics and misattributes under concurrent calls).
func (a *Auto) MatchReaderFrags(r io.Reader, chunkSize int) ([]string, []engine.Fragment, ReadStats, error) {
	return a.matchReader(r, chunkSize, true)
}

func (a *Auto) matchReader(r io.Reader, chunkSize int, extract bool) ([]string, []engine.Fragment, ReadStats, error) {
	var rs ReadStats
	bufp, _ := a.staging.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
		*bufp = make([]byte, 0, a.sizeThreshold)
	}
	defer a.staging.Put(bufp)
	buf := (*bufp)[:0]
	small := false
	for len(buf) < a.sizeThreshold {
		if cap(buf) < a.sizeThreshold {
			grown := make([]byte, len(buf), a.sizeThreshold)
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):a.sizeThreshold])
		buf = buf[:len(buf)+n]
		if n > 0 {
			rs.BytesRead += int64(n)
			rs.Chunks++
		}
		if err == io.EOF {
			small = true
			break
		}
		if err != nil {
			*bufp = buf
			return nil, nil, rs, err
		}
	}
	*bufp = buf
	mode := engine.CaptureOff
	if extract {
		// Serial even for the fully staged route: the staging buffer is
		// recycled, so slice captures into it would dangle — and serial
		// keeps the reader-path fragment form identical across routes.
		mode = engine.CaptureSerial
	}
	if small {
		// The whole document is staged: match it on a replica. Pool-routed
		// readers run concurrently — nothing here is shared per call.
		ids, frags, err := a.pool.matchBytes(buf, mode)
		rs.BytesConsumed = int64(len(buf))
		a.note("pool", rs)
		return ids, frags, rs, err
	}
	br := bytes.NewReader(buf)
	if a.sh.Len() < a.minSubs {
		// Larger than the peek but too few subscriptions to amortize the
		// fan-out: stream it sequentially on a pool replica — bounded
		// memory, no broadcast, still concurrent across documents.
		ids, frags, prs, err := a.pool.matchReader(io.MultiReader(br, r), chunkSize, mode)
		// prs.BytesRead counts reads from the MultiReader, replayed
		// prefix included; adding back the unconsumed prefix makes it the
		// bytes actually pulled from the caller's reader plus the peek.
		prs.BytesRead += int64(br.Len())
		a.note("pool", prs)
		return ids, frags, prs, err
	}
	// Large document, large subscription set: fan out event-sharded.
	// Sharded serializes documents internally.
	ids, frags, srs, err := a.sh.matchReader(io.MultiReader(br, r), chunkSize, mode)
	srs.BytesRead += int64(br.Len())
	a.note("shard", srs)
	return ids, frags, srs, err
}

// ReadStats returns the input accounting of the last MatchReader call.
func (a *Auto) ReadStats() ReadStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rstats
}

// Stats aggregates the sharded half's engine statistics (the pool's
// replicas are structurally identical).
func (a *Auto) Stats() engine.Stats { return a.sh.Stats() }

// MemStats returns the live-memory accounting of the half the last Match
// call ran on.
func (a *Auto) MemStats() engine.MemStats {
	a.mu.Lock()
	mode := a.lastMode
	a.mu.Unlock()
	if mode == "pool" {
		return a.pool.MemStats()
	}
	return a.sh.MemStats()
}

// Close stops the sharded half's workers. The engine is unusable
// afterwards; Close is idempotent.
func (a *Auto) Close() { a.sh.Close() }
