package streamxpath

import (
	"fmt"

	"streamxpath/internal/commcc"
	"streamxpath/internal/sax"
)

// LowerBoundReport summarizes one executable lower-bound experiment: the
// document family was generated, its fooling/reduction properties were
// machine-verified against the reference evaluator, and the streaming
// filter's states at the cut points were counted.
type LowerBoundReport struct {
	// Kind names the bound: "frontier", "recursion", or "depth".
	Kind string
	// Parameter is the bound's quantity: FS(Q), r, or the family size t
	// (≈ d).
	Parameter int
	// FamilySize is the number of inputs in the family.
	FamilySize int
	// LowerBoundBits is the proven minimum memory in bits for any
	// streaming algorithm on this family (via Lemma 3.7).
	LowerBoundBits int
	// DistinctStates is the number of distinct states our filter reached
	// across the family's prefixes — it must be at least FamilySize for
	// the filter to be correct, certifying the bound empirically.
	DistinctStates int
	// MaxMessageBits is the largest state the filter carried across a
	// cut (the filter's actual memory at the adversarial boundary).
	MaxMessageBits int
}

func (r LowerBoundReport) String() string {
	return fmt.Sprintf("%s bound: parameter=%d family=%d proven>=%d bits, filter: states=%d, state size=%d bits",
		r.Kind, r.Parameter, r.FamilySize, r.LowerBoundBits, r.DistinctStates, r.MaxMessageBits)
}

// VerifyFrontierLowerBound runs the Theorem 7.1 experiment on a
// redundancy-free query: it builds the 2^FS(Q) fooling documents from the
// query's canonical document, machine-checks the fooling conditions
// (verifying up to maxPairs crossover pairs; 0 = all), and measures the
// filter's states at the cut.
func (q *Query) VerifyFrontierLowerBound(maxPairs int) (*LowerBoundReport, error) {
	fam, err := commcc.NewFrontierFamily(q.q)
	if err != nil {
		return nil, err
	}
	if err := fam.VerifyFoolingSet(maxPairs); err != nil {
		return nil, err
	}
	states, err := fam.DistinctStates()
	if err != nil {
		return nil, err
	}
	maxBits := 0
	for _, t := range fam.Subsets {
		a, b := fam.Split(t)
		run, err := commcc.RunProtocol(q.q, [][]sax.Event{a, b})
		if err != nil {
			return nil, err
		}
		if m := run.MaxMessageBits(); m > maxBits {
			maxBits = m
		}
	}
	return &LowerBoundReport{
		Kind:           "frontier",
		Parameter:      fam.FS(),
		FamilySize:     fam.Size(),
		LowerBoundBits: commcc.SpaceLowerBound(fam.FS(), 2),
		DistinctStates: states,
		MaxMessageBits: maxBits,
	}, nil
}

// VerifyRecursionLowerBound runs the Theorem 7.4 experiment on a query in
// Recursive XPath with recursion budget r: every DISJ input pair maps to a
// document matching iff the sets intersect (up to maxInputs pairs checked;
// 0 = all 4^r), and the filter's states over the 2^r characteristic
// vectors are counted.
func (q *Query) VerifyRecursionLowerBound(r, maxInputs int) (*LowerBoundReport, error) {
	fam, err := commcc.NewDisjFamily(q.q, r)
	if err != nil {
		return nil, err
	}
	if err := fam.VerifyReduction(maxInputs); err != nil {
		return nil, err
	}
	states, err := fam.DistinctStates(0)
	if err != nil {
		return nil, err
	}
	ones := make([]bool, r)
	for i := range ones {
		ones[i] = true
	}
	run, err := fam.RunDisjProtocol(ones, ones)
	if err != nil {
		return nil, err
	}
	return &LowerBoundReport{
		Kind:           "recursion",
		Parameter:      r,
		FamilySize:     1 << r,
		LowerBoundBits: commcc.SpaceLowerBound(r, 2),
		DistinctStates: states,
		MaxMessageBits: run.MaxMessageBits(),
	}, nil
}

// VerifyDepthLowerBound runs the Theorem 7.14 experiment with depth budget
// d: the padded documents D_i all match, crossovers D_{i,j} fail (up to
// maxI family members verified; 0 = all), and the filter's states over the
// depths are counted.
func (q *Query) VerifyDepthLowerBound(d, maxI int) (*LowerBoundReport, error) {
	fam, err := commcc.NewDepthFamily(q.q, d)
	if err != nil {
		return nil, err
	}
	if err := fam.VerifyFoolingSet(maxI); err != nil {
		return nil, err
	}
	states, err := fam.DistinctStates(0)
	if err != nil {
		return nil, err
	}
	run, err := fam.RunDepthProtocol(fam.T - 1)
	if err != nil {
		return nil, err
	}
	logT := 0
	for 1<<logT < fam.T {
		logT++
	}
	return &LowerBoundReport{
		Kind:           "depth",
		Parameter:      fam.T,
		FamilySize:     fam.T,
		LowerBoundBits: commcc.SpaceLowerBound(logT, 3),
		DistinctStates: states,
		MaxMessageBits: run.MaxMessageBits(),
	}, nil
}
