// Package streamxpath is a streaming XPath filtering library reproducing
// "On the Memory Requirements of XPath Evaluation over XML Streams"
// (Bar-Yossef, Fontoura, Josifovski; PODS 2004 / JCSS 2007).
//
// It provides:
//
//   - a compiler and single-pass streaming filter for Forward XPath queries
//     (child/descendant/attribute axes, wildcards, conjunctive predicates
//     with comparisons, arithmetic and string functions), implementing the
//     paper's Section 8 algorithm with memory
//     O(|Q|·r·(log|Q|+log d+log w) + w) bits — near the paper's lower
//     bounds;
//   - an in-memory reference evaluator implementing the paper's exact
//     selection semantics (Definitions 3.1-3.6), used for full evaluation
//     and as a correctness oracle;
//   - a multi-query dissemination engine (FilterSet): thousands of
//     standing subscriptions compiled into one shared prefix-sharing
//     index — a combined NFA for linear queries, a shared frontier trie
//     for predicated ones — matched against each document in a single
//     pass with per-event cost governed by structure sharing rather than
//     subscription count;
//   - parallel dissemination across cores: ParallelFilterSet shards the
//     subscriptions over N engine instances bound to one concurrent
//     symbol table and fans each document's (once-tokenized) event
//     stream out to them, returning results identical to FilterSet;
//     FilterPool runs full engine replicas matching whole documents
//     concurrently for feed workloads;
//   - query analysis: frontier size (the paper's lower-bound quantity),
//     membership in Redundancy-free XPath and the other fragments the
//     paper's theorems quantify over;
//   - executable lower-bound experiments: the fooling-set and
//     set-disjointness document families of Sections 4 and 7, machine-
//     verified, with Alice/Bob protocols run over the real filter's
//     serialized state (Lemma 3.7).
//
// Quick start:
//
//	matched, err := streamxpath.Match("/inventory[item > 5]", xmlText)
//
// or, for a reusable filter over many documents:
//
//	q, _ := streamxpath.Compile(`//item[keyword = "go"]`)
//	f, _ := q.NewFilter()
//	for _, doc := range docs {
//	    ok, _ := f.MatchString(doc)
//	    ...
//	}
//
// or, for many standing queries over a document stream:
//
//	s := streamxpath.NewFilterSet()
//	s.Add("alice", `//item[keyword = "go"]`)
//	s.Add("bob", `//item[priority > 8]`)
//	ids, _ := s.MatchString(doc) // matched subscription ids, one pass
package streamxpath

import (
	"fmt"
	"io"

	"streamxpath/internal/core"
	"streamxpath/internal/fragment"
	"streamxpath/internal/limits"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
	"streamxpath/internal/semantics"
	"streamxpath/internal/symtab"
	"streamxpath/internal/tree"
)

// Query is a compiled Forward XPath query.
type Query struct {
	q *query.Query
}

// Compile parses a Forward XPath query (the grammar of the paper's
// Fig. 1): absolute paths over /, //, @ with optional predicates combining
// relative paths, comparisons, arithmetic, and/or/not, and the basic XPath
// function library (contains, starts-with, ends-with, string-length,
// concat, substring, number, string, floor, ceiling, round,
// normalize-space).
func Compile(src string) (*Query, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the query in surface syntax.
func (q *Query) String() string { return q.q.String() }

// Size returns |Q|, the number of query tree nodes.
func (q *Query) Size() int { return q.q.Size() }

// Filter is a single-pass streaming matcher for one query. A Filter is
// reusable across documents but not safe for concurrent use; create one
// per goroutine.
type Filter struct {
	f   *core.Filter
	tab *symtab.Table
	tok *sax.TokenizerBytes

	// Chunked-reader state: the resumable tokenizer of MatchReader, its
	// chunk size (0 = DefaultChunkSize), the stats of the last call, and
	// the MatchString staging buffer. procFn/decFn are the streamDoc
	// callbacks, built once so repeat MatchReader calls allocate nothing.
	stok   *sax.StreamTokenizer
	chunk  int
	rs     ReaderStats
	buf    []byte
	procFn func(sax.ByteEvent) error
	decFn  func() bool

	// lim holds the per-document resource budgets and breach policy;
	// abstained records whether the last Match call degraded under
	// LimitAbstain.
	lim       Limits
	abstained bool
}

// NewFilter compiles the streaming filter. It returns an error if the
// query is outside the streamable fragment (the Section 8 algorithm
// supports leaf-only-value-restricted univariate conjunctive queries;
// disjunction, negation and multi-variable predicates require the
// in-memory Evaluate path).
func (q *Query) NewFilter() (*Filter, error) {
	f, err := core.Compile(q.q)
	if err != nil {
		return nil, err
	}
	tab := symtab.New()
	f.BindSymbols(tab)
	return &Filter{f: f, tab: tab}, nil
}

// MatchReader streams an XML document from r through the chunked
// interned-symbol byte path: the document is read in fixed-size chunks
// (SetChunkSize; DefaultChunkSize otherwise), tokenized by a resumable
// tokenizer that retains only the unconsumed tail across chunk
// boundaries, and matched event by event — peak memory is bounded by the
// chunk size plus the open-element depth, never the document size, and
// the steady-state per-event cost is allocation-free. The moment the
// verdict is decided the reader stops being consumed; ReaderStats
// reports the early exit, how many bytes it needed, and whether the
// decision was negative. A provisional match is final by monotonicity;
// a negative verdict latches when the dead-state analysis proves no
// continuation of the document can satisfy one of the query root's
// obligations (e.g. /news/item against a <catalog> document dies at the
// first start tag). Note that on early exit the remainder of the
// document is not validated.
func (f *Filter) MatchReader(r io.Reader) (bool, error) {
	f.abstained = false
	f.f.Reset()
	if f.stok == nil {
		f.stok = sax.NewStreamTokenizer(f.tab)
		f.stok.SetLimits(f.lim.internal())
		f.procFn = f.f.ProcessBytes
		f.decFn = f.f.Decided
	} else {
		f.stok.Reset()
	}
	_, err := streamDoc(r, f.stok, f.chunk, &f.rs, f.procFn, f.decFn)
	if err != nil {
		ok, err := f.limited(err)
		f.rs.Abstained = f.abstained
		return ok, err
	}
	if !f.f.Done() {
		if f.rs.EarlyExit {
			// Decided mid-stream: the provisional-scope walk yields the
			// final verdict — true on a positive decision, false when the
			// dead-state analysis killed an obligation.
			matched := f.f.WouldMatchIfClosedNow()
			f.rs.DecidedNegative = !matched
			return matched, nil
		}
		return false, fmt.Errorf("streamxpath: document ended prematurely")
	}
	return f.f.Matched(), nil
}

// SetChunkSize sets the read granularity of MatchReader (n <= 0 restores
// DefaultChunkSize).
func (f *Filter) SetChunkSize(n int) { f.chunk = n }

// SetLimits configures the per-document resource budgets and breach
// policy (the zero value disables them). Limits persist across
// documents; a breach under LimitFail surfaces as a *LimitError, under
// LimitAbstain as a degraded verdict (see Abstained). Either way the
// filter stays reusable, and no budget check allocates until a breach
// actually occurs.
func (f *Filter) SetLimits(l Limits) {
	f.lim = l
	f.f.SetLimits(l.internal())
	if f.tok != nil {
		f.tok.SetLimits(l.internal())
	}
	if f.stok != nil {
		f.stok.SetLimits(l.internal())
	}
}

// Limits returns the configured budgets.
func (f *Filter) Limits() Limits { return f.lim }

// Abstained reports whether the last Match call hit a resource budget
// under LimitAbstain. The verdict returned by that call was the
// provisional one at the moment of the breach: true is definitive (a
// provisional match is final by monotonicity); false means "not matched
// within budget".
//
// Deprecated: use the Match*Result methods, whose MatchResult.Abstained
// is the same call's flag rather than the last call's.
func (f *Filter) Abstained() bool { return f.abstained }

// limited applies the breach policy to an error carrying a *LimitError:
// under LimitAbstain the provisional verdict at the moment of the breach
// comes back with a nil error (a true verdict is already final by
// monotonicity). Any other error passes through unchanged.
func (f *Filter) limited(err error) (bool, error) {
	if f.lim.Policy == LimitAbstain && limitBreach(err) {
		f.abstained = true
		return f.f.WouldMatchIfClosedNow(), nil
	}
	return false, err
}

// ReaderStats returns the input accounting of the last MatchReader call:
// bytes read, bytes tokenized, and whether the verdict was decided
// before end of input.
//
// Deprecated: use MatchReaderResult, whose MatchResult.ReaderStats is
// the same call's accounting rather than the last call's.
func (f *Filter) ReaderStats() ReaderStats { return f.rs }

// MatchString filters an XML document given as a string: it is staged
// into a reusable buffer and matched through the MatchBytes fast path,
// so the whole document is validated (no early exit).
func (f *Filter) MatchString(xml string) (bool, error) {
	f.buf = append(f.buf[:0], xml...)
	return f.MatchBytes(f.buf)
}

// MatchBytes filters an XML document held in a byte slice through the
// interned-symbol fast path: names are interned once into the filter's
// symbol table, events carry byte slices instead of strings, and
// matching dispatches on symbols. In the steady state (document shapes
// and names already seen) the whole pipeline allocates nothing. Unlike
// MatchReader the document must be in memory; the filter retains its
// tokenizer and symbol table across calls, which is what makes repeat
// matching allocation-free.
func (f *Filter) MatchBytes(doc []byte) (bool, error) {
	f.abstained = false
	f.f.Reset()
	if l := f.lim.MaxDocBytes; l > 0 && int64(len(doc)) > l {
		return f.limited(fmt.Errorf("streamxpath: %w",
			&limits.Error{Resource: "doc-bytes", Limit: l, Observed: int64(len(doc))}))
	}
	if f.tok == nil {
		f.tok = sax.NewTokenizerBytes(doc, f.tab)
		f.tok.SetLimits(f.lim.internal())
	} else {
		f.tok.Reset(doc)
	}
	for {
		e, err := f.tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return f.limited(err)
		}
		if err := f.f.ProcessBytes(e); err != nil {
			return f.limited(err)
		}
	}
	if !f.f.Done() {
		return false, fmt.Errorf("streamxpath: document ended prematurely")
	}
	return f.f.Matched(), nil
}

// result assembles a single-query MatchResult: MatchedIDs carries the
// query source when it matched (the Filter analogue of a subscription
// id), and the memory accounting maps the filter's MemoryStats onto the
// engine-level MemStats shape. A standalone Filter has no extraction
// registration, so Fragments is always nil — use FilterSet.AddExtract
// for fragment extraction.
func (f *Filter) result(ok bool) MatchResult {
	res := MatchResult{Abstained: f.abstained}
	if ok {
		res.MatchedIDs = []string{f.f.Query().String()}
	}
	st := f.Stats()
	res.MemStats = MemStats{
		Events:            st.Events,
		PeakLiveTuples:    st.PeakFrontierTuples,
		PeakBufferedBytes: st.PeakBufferBytes,
		MaxDepth:          st.MaxDepth,
		EstimatedBits:     st.EstimatedBits,
		LowerBoundBits:    st.LowerBoundBits,
		OptimalityRatio:   st.OptimalityRatio,
	}
	return res
}

// MatchBytesResult is MatchBytes returning the unified MatchResult.
func (f *Filter) MatchBytesResult(doc []byte) (MatchResult, error) {
	ok, err := f.MatchBytes(doc)
	if err != nil {
		return MatchResult{}, err
	}
	return f.result(ok), nil
}

// MatchStringResult is MatchString returning the unified MatchResult.
func (f *Filter) MatchStringResult(xml string) (MatchResult, error) {
	ok, err := f.MatchString(xml)
	if err != nil {
		return MatchResult{}, err
	}
	return f.result(ok), nil
}

// MatchReaderResult is MatchReader returning the unified MatchResult,
// with this call's reader accounting in place of the ReaderStats
// accessor.
func (f *Filter) MatchReaderResult(r io.Reader) (MatchResult, error) {
	ok, err := f.MatchReader(r)
	if err != nil {
		return MatchResult{}, err
	}
	res := f.result(ok)
	res.ReaderStats = f.rs
	return res, nil
}

// MemoryStats reports the filter's peak memory use on the last document,
// in the units of the paper's Theorem 8.8.
type MemoryStats struct {
	// Events is the number of SAX events processed.
	Events int
	// PeakFrontierTuples is the maximum number of simultaneous frontier
	// tuples (bounded by FS(Q) for path consistency-free closure-free
	// queries and by |Q|·r in general).
	PeakFrontierTuples int
	// PeakBufferBytes is the maximum buffered text (bounded by the text
	// width w).
	PeakBufferBytes int
	// MaxDepth is the maximum document depth reached (the log d term).
	MaxDepth int
	// EstimatedBits applies the paper's cost model:
	// tuples·(log|Q|+log d+log w) + 8·buffer.
	EstimatedBits int
	// LowerBoundBits is the paper's floor for the same document shape:
	// FS(Q)·log d bits — the frontier-size bound of Section 6 times the
	// Ω(log d) depth term of Section 4.
	LowerBoundBits int
	// OptimalityRatio is EstimatedBits / LowerBoundBits — how many times
	// the information-theoretic minimum the filter's accounted peak state
	// occupied.
	OptimalityRatio float64
}

// Stats returns the memory statistics of the last (or current) document.
func (f *Filter) Stats() MemoryStats {
	s := f.f.Stats()
	out := MemoryStats{
		Events:             s.Events,
		PeakFrontierTuples: s.PeakTuples,
		PeakBufferBytes:    s.PeakBufferBytes,
		MaxDepth:           s.MaxLevel,
		EstimatedBits:      s.EstimatedBits(f.f.Query().Size()),
	}
	out.LowerBoundBits = core.LowerBoundBits(fragment.FrontierSize(f.f.Query()), s.MaxLevel)
	if out.LowerBoundBits > 0 {
		out.OptimalityRatio = float64(out.EstimatedBits) / float64(out.LowerBoundBits)
	}
	return out
}

// Match is the one-shot convenience: compile the query, stream the
// document, report the match. Queries outside the streamable fragment fall
// back to the in-memory evaluator.
func Match(querySrc, xml string) (bool, error) {
	q, err := Compile(querySrc)
	if err != nil {
		return false, err
	}
	if f, err := q.NewFilter(); err == nil {
		return f.MatchString(xml)
	}
	d, err := tree.Parse(xml)
	if err != nil {
		return false, err
	}
	return semantics.BoolEval(q.q, d), nil
}

// MatchBytes filters one in-memory document through the byte-slice fast
// path, falling back to the in-memory evaluator for queries outside the
// streamable fragment. One-shot: callers matching many documents against
// the same query should hold a Filter and use Filter.MatchBytes, which
// reuses its tokenizer and symbol table across documents.
func (q *Query) MatchBytes(doc []byte) (bool, error) {
	f, err := q.NewFilter()
	if err == nil {
		return f.MatchBytes(doc)
	}
	d, err := tree.Parse(string(doc))
	if err != nil {
		return false, err
	}
	return semantics.BoolEval(q.q, d), nil
}

// Evaluate performs full (non-streaming) evaluation per the paper's
// FULLEVAL: it returns the string values of the nodes the query selects,
// in document order. The whole document is materialized; unlike the
// streaming filter this path supports the entire Forward XPath grammar
// including or/not and multi-variable predicates.
func (q *Query) Evaluate(xml string) ([]string, error) {
	d, err := tree.Parse(xml)
	if err != nil {
		return nil, err
	}
	return semantics.EvalStrings(q.q, d), nil
}

// EvaluateReader is Evaluate over an io.Reader.
func (q *Query) EvaluateReader(r io.Reader) ([]string, error) {
	d, err := tree.ParseReader(r)
	if err != nil {
		return nil, err
	}
	return semantics.EvalStrings(q.q, d), nil
}

// MatchDocument evaluates BOOLEVAL in memory (full grammar support).
func (q *Query) MatchDocument(xml string) (bool, error) {
	d, err := tree.Parse(xml)
	if err != nil {
		return false, err
	}
	return semantics.BoolEval(q.q, d), nil
}
