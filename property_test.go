// Property-based tests over the whole stack: randomized cross-oracle
// agreement (semantics vs. matchings vs. the streaming filter), state
// snapshot/restore at arbitrary cut points, and serializer round trips.
// These are the repository's strongest invariants: three independent
// implementations of BOOLEVAL must agree on arbitrary inputs.
package streamxpath_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamxpath/internal/core"
	"streamxpath/internal/fragment"
	"streamxpath/internal/match"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
	"streamxpath/internal/semantics"
	"streamxpath/internal/streameval"
	"streamxpath/internal/tree"
	"streamxpath/internal/workload"
)

// docFor builds a random document biased toward the names appearing in q,
// so matches actually occur.
func docFor(rng *rand.Rand, q *query.Query) *tree.Node {
	names := []string{"zzz"}
	for _, u := range q.Nodes() {
		if !u.IsRoot() && !u.IsWildcard() {
			names = append(names, u.NTest)
		}
	}
	texts := []string{"0", "3", "7", "15", "x", ""}
	return workload.RandomTree(rng, names, texts, 5, 3)
}

// TestPropertyThreeOracleAgreement: for random redundancy-free queries and
// random documents, the selection semantics, the matching search (Lemma
// 5.10), and the streaming filter all agree.
func TestPropertyThreeOracleAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1000))
	matchedCount := 0
	for iter := 0; iter < 400; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(6))
		d := docFor(rng, q)

		want := semantics.BoolEval(q, d)
		if want {
			matchedCount++
		}

		got2, err := match.MatchOracle(q, d)
		if err != nil {
			t.Fatalf("iter %d: match oracle: %v", iter, err)
		}
		if got2 != want {
			t.Fatalf("iter %d: Lemma 5.10 violated for %s on %s: matching=%v semantics=%v",
				iter, q, d, got2, want)
		}

		f, err := core.Compile(q)
		if err != nil {
			t.Fatalf("iter %d: compile %s: %v", iter, q, err)
		}
		got3, err := f.ProcessAll(d.Events())
		if err != nil {
			t.Fatal(err)
		}
		if got3 != want {
			t.Fatalf("iter %d: Theorem 8.1 violated for %s on %s: filter=%v semantics=%v",
				iter, q, d, got3, want)
		}
	}
	if matchedCount == 0 {
		t.Error("test corpus never produced a match; generator is too cold")
	}
}

// TestPropertySnapshotAtRandomCuts: cutting a stream at any point,
// serializing the filter state, and restoring into a fresh filter never
// changes the answer (the invariant Lemma 3.7's protocol relies on).
func TestPropertySnapshotAtRandomCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for iter := 0; iter < 120; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(5))
		d := docFor(rng, q)
		events := d.Events()
		f, err := core.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.ProcessAll(events)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(events) + 1)
		alice, _ := core.Compile(q)
		for _, e := range events[:cut] {
			if err := alice.Process(e); err != nil {
				t.Fatal(err)
			}
		}
		bob, _ := core.Compile(q)
		if err := bob.Restore(alice.Snapshot()); err != nil {
			t.Fatalf("iter %d cut %d: %v", iter, cut, err)
		}
		for _, e := range events[cut:] {
			if err := bob.Process(e); err != nil {
				t.Fatal(err)
			}
		}
		if bob.Matched() != want {
			t.Fatalf("iter %d: cut at %d/%d changed the answer for %s on %s",
				iter, cut, len(events), q, d)
		}
	}
}

// TestPropertySerializeParseRoundTrip: serializing any generated document
// and re-tokenizing it yields the same tree.
func TestPropertySerializeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1002))
	for iter := 0; iter < 150; iter++ {
		d := workload.RandomTree(rng, []string{"a", "b", "c"}, []string{"x", "1 < 2 & 3", "", "  spaced  "}, 4, 3)
		xml, err := d.XML()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := tree.Parse(xml)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, xml)
		}
		// Text coalescing may merge adjacent text nodes; compare via
		// string values and element structure rather than node identity.
		if !equalStructure(d, d2) {
			t.Fatalf("iter %d: round trip mismatch:\n%s\nvs\n%s", iter, d.Outline(), d2.Outline())
		}
	}
}

// equalStructure compares element structure and per-element string values.
func equalStructure(a, b *tree.Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name {
		return false
	}
	if a.StrVal() != b.StrVal() {
		return false
	}
	ea, eb := elementChildren(a), elementChildren(b)
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if !equalStructure(ea[i], eb[i]) {
			return false
		}
	}
	return true
}

func elementChildren(n *tree.Node) []*tree.Node {
	var out []*tree.Node
	for _, c := range n.Children {
		if c.Kind != tree.KindText {
			out = append(out, c)
		}
	}
	return out
}

// TestPropertyQueryRenderReparse: rendering any generated query and
// reparsing it yields an equivalent query (same string, same frontier
// size, same BOOLEVAL on sample documents).
func TestPropertyQueryRenderReparse(t *testing.T) {
	rng := rand.New(rand.NewSource(1003))
	for iter := 0; iter < 120; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(6))
		q2, err := query.Parse(q.String())
		if err != nil {
			t.Fatalf("iter %d: reparse %q: %v", iter, q.String(), err)
		}
		if q2.String() != q.String() {
			t.Fatalf("iter %d: render not stable: %q vs %q", iter, q.String(), q2.String())
		}
		if fragment.FrontierSize(q) != fragment.FrontierSize(q2) {
			t.Fatalf("iter %d: frontier size changed on reparse", iter)
		}
		d := docFor(rng, q)
		if semantics.BoolEval(q, d) != semantics.BoolEval(q2, d) {
			t.Fatalf("iter %d: semantics changed on reparse of %s", iter, q)
		}
	}
}

// TestPropertyFrontierBoundHolds: for generated closure-free
// path-consistency-free queries, the filter's frontier never exceeds
// FS(Q) on any document (Theorem 8.8's second regime).
func TestPropertyFrontierBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(1004))
	checked := 0
	for iter := 0; iter < 200; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(6))
		if !fragment.ClosureFree(q) || !fragment.PathConsistencyFree(q) {
			continue
		}
		checked++
		fs := fragment.FrontierSize(q)
		f, err := core.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		d := docFor(rng, q)
		if _, err := f.ProcessAll(d.Events()); err != nil {
			t.Fatal(err)
		}
		if got := f.Stats().PeakFrontier; got > fs {
			t.Fatalf("iter %d: frontier %d exceeds FS(Q) = %d for %s on %s",
				iter, got, fs, q, d)
		}
	}
	if checked < 20 {
		t.Errorf("only %d closure-free pc-free queries generated; corpus too thin", checked)
	}
}

// TestPropertyDocumentReorderInvariance: for queries with no value
// restrictions, BOOLEVAL is indifferent to sibling order — shuffling the
// children of every node never changes the answer (the property Claim 7.2
// relies on; with value predicates it fails, because STRVAL of an internal
// node concatenates text descendants in document order, e.g. "015" vs
// "150").
func TestPropertyDocumentReorderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1005))
	checked := 0
	for iter := 0; iter < 300; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(5))
		if hasValueRestrictedLeaf(t, q) {
			continue
		}
		checked++
		d := docFor(rng, q)
		want := semantics.BoolEval(q, d)
		shuffled := shuffleChildren(rng, d)
		if got := semantics.BoolEval(q, shuffled); got != want {
			t.Fatalf("iter %d: sibling reorder changed BOOLEVAL for %s:\n%s\nvs\n%s",
				iter, q, d.Outline(), shuffled.Outline())
		}
	}
	if checked < 20 {
		t.Errorf("only %d structural queries generated", checked)
	}
}

// hasValueRestrictedLeaf reports whether any query node carries a proper
// truth-set restriction.
func hasValueRestrictedLeaf(t *testing.T, q *query.Query) bool {
	t.Helper()
	for _, u := range q.Nodes() {
		s, err := query.TruthSetOf(u)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsAll() {
			return true
		}
	}
	return false
}

// shuffleChildren deep-copies d with every node's children permuted.
func shuffleChildren(rng *rand.Rand, d *tree.Node) *tree.Node {
	c := d.Clone()
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		rng.Shuffle(len(n.Children), func(i, j int) {
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		})
		for _, ch := range n.Children {
			rec(ch)
		}
	}
	rec(c)
	return c
}

// TestPropertyEventStreamWellFormedness uses testing/quick to check that
// tree-generated event streams always pass the well-formedness checker.
func TestPropertyEventStreamWellFormedness(t *testing.T) {
	f := func(seed int64, fanout uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := workload.RandomTree(rng, []string{"a", "b"}, []string{"t"}, 3, int(fanout%4))
		return sax.IsWellFormed(d.Events())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFilterMonotoneUnderMatchExtension: adding a subtree that
// makes the query match cannot un-match it (BOOLEVAL is monotone for
// conjunctive positive queries under adding siblings).
func TestPropertyFilterMonotoneUnderMatchExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(1006))
	for iter := 0; iter < 100; iter++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(4))
		d := docFor(rng, q)
		if !semantics.BoolEval(q, d) {
			continue
		}
		// Graft a random extra subtree under the document element.
		extended := d.Clone()
		if len(extended.Children) > 0 {
			extra := workload.RandomTree(rng, []string{"zzz", "www"}, []string{"t"}, 2, 2)
			extended.Children[0].Append(extra.Children[0])
		}
		if !semantics.BoolEval(q, extended) {
			t.Fatalf("iter %d: adding an unrelated subtree un-matched %s", iter, q)
		}
		f, _ := core.Compile(q)
		got, err := f.ProcessAll(extended.Events())
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatalf("iter %d: filter disagrees on extended document for %s", iter, q)
		}
	}
}

// TestPropertyStreamEvalAgainstReference: the streaming full evaluator
// agrees with FULLEVAL on generated queries extended with an output tail
// step, over random documents (values and order).
func TestPropertyStreamEvalAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1007))
	checked := 0
	for iter := 0; iter < 200 && checked < 120; iter++ {
		base := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(4))
		tail := []string{"/out", "//out", "/out/deep"}[rng.Intn(3)]
		q, err := query.Parse(base.String() + tail)
		if err != nil {
			t.Fatalf("constructed query: %v", err)
		}
		e, err := streameval.Compile(q)
		if err != nil {
			continue
		}
		checked++
		d := docForEval(rng, q)
		want := semantics.EvalStrings(q, d)
		e.Reset()
		got, err := e.ProcessAll(d.Events())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: %s: streamed %v != reference %v on\n%s",
				iter, q, got, want, d.Outline())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: %s: value %d: %q != %q", iter, q, i, got[i], want[i])
			}
		}
	}
	if checked < 80 {
		t.Errorf("only %d queries checked", checked)
	}
}

// docForEval biases documents toward the query's names including the
// output tail names.
func docForEval(rng *rand.Rand, q *query.Query) *tree.Node {
	names := []string{"zzz", "out", "deep"}
	for _, u := range q.Nodes() {
		if !u.IsRoot() && !u.IsWildcard() {
			names = append(names, u.NTest)
		}
	}
	texts := []string{"0", "3", "7", "15", "x"}
	return workload.RandomTree(rng, names, texts, 5, 3)
}
