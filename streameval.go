package streamxpath

import (
	"fmt"
	"io"
	"strings"

	"streamxpath/internal/sax"
	"streamxpath/internal/streameval"
)

// StreamEvaluator performs full query evaluation in a single streaming
// pass: it emits the string values of the nodes the query selects, in
// document order, buffering each candidate only until its governing
// predicates resolve. (Filtering needs no buffering; full evaluation
// inherently does — the value of /a[c]/b's first b cannot be released
// until the c arrives. The evaluator's Stats expose that buffering.)
type StreamEvaluator struct {
	e *streameval.Evaluator
	// Chunked-reader state of EvaluateReader: resumable tokenizer, chunk
	// size (0 = DefaultChunkSize), last-call stats, cached event callback.
	stok   *sax.StreamTokenizer
	chunk  int
	rs     ReaderStats
	procFn func(ev sax.ByteEvent) error
}

// NewStreamEvaluator compiles the streaming evaluator. The query must be
// within the streamable fragment and must select element or attribute
// values (not the document root).
func (q *Query) NewStreamEvaluator() (*StreamEvaluator, error) {
	e, err := streameval.Compile(q.q)
	if err != nil {
		return nil, err
	}
	return &StreamEvaluator{e: e}, nil
}

// OnValue registers a callback invoked with each selected value as soon as
// its fate is decided — before the document ends, whenever the predicates
// allow. Pass nil to unregister.
func (s *StreamEvaluator) OnValue(fn func(value string)) { s.e.Emit = fn }

// EvaluateReader streams a document and returns the selected values in
// document order. The document is read in fixed-size chunks
// (SetChunkSize; DefaultChunkSize otherwise) through the resumable byte
// tokenizer, so the input is never buffered whole — only the evaluator's
// own candidate buffering (see Stats) and the tokenizer's
// unconsumed-tail window are held. Full evaluation can never exit early:
// every selected value must be read, so the stream is always consumed to
// the end.
func (s *StreamEvaluator) EvaluateReader(r io.Reader) ([]string, error) {
	s.e.Reset()
	if s.stok == nil {
		s.stok = sax.NewStreamTokenizer(nil)
		tab := s.stok.Table()
		s.procFn = func(ev sax.ByteEvent) error {
			// The evaluator buffers and emits string values, so its event
			// surface stays the string Event; symbol names resolve without
			// copying, text payloads are materialized per event.
			return s.e.Process(ev.Event(tab))
		}
	} else {
		s.stok.Reset()
	}
	if _, err := streamDoc(r, s.stok, s.chunk, &s.rs, s.procFn, nil); err != nil {
		return nil, err
	}
	if res := s.e.Results(); res != nil {
		return res, nil
	}
	if s.e.Stats().Events == 0 {
		return nil, fmt.Errorf("streamxpath: empty document stream")
	}
	return nil, nil
}

// SetChunkSize sets the read granularity of EvaluateReader (n <= 0
// restores DefaultChunkSize).
func (s *StreamEvaluator) SetChunkSize(n int) { s.chunk = n }

// ReaderStats returns the input accounting of the last EvaluateReader
// call.
func (s *StreamEvaluator) ReaderStats() ReaderStats { return s.rs }

// EvaluateString is EvaluateReader over a string.
func (s *StreamEvaluator) EvaluateString(xml string) ([]string, error) {
	return s.EvaluateReader(strings.NewReader(xml))
}

// EvalStats reports the streaming evaluator's buffering on the last
// document.
type EvalStats struct {
	// Events is the number of SAX events processed.
	Events int
	// Emitted and Dropped count the decided output candidates.
	Emitted, Dropped int
	// PeakPendingValues is the maximum number of values simultaneously
	// buffered awaiting predicate resolution.
	PeakPendingValues int
	// PeakBufferedBytes is the maximum total buffered text.
	PeakBufferedBytes int
}

// Stats returns the buffering statistics of the last document.
func (s *StreamEvaluator) Stats() EvalStats {
	st := s.e.Stats()
	return EvalStats{
		Events:            st.Events,
		Emitted:           st.Emitted,
		Dropped:           st.Dropped,
		PeakPendingValues: st.PeakPendingCandidates,
		PeakBufferedBytes: st.PeakBufferedBytes,
	}
}
