package streamxpath_test

import (
	"fmt"

	"streamxpath"
)

func ExampleMatch() {
	matched, err := streamxpath.Match(
		"/inventory/item[price < 10]",
		"<inventory><item><price>7</price></item></inventory>")
	if err != nil {
		panic(err)
	}
	fmt.Println(matched)
	// Output: true
}

func ExampleQuery_NewFilter() {
	q := streamxpath.MustCompile(`//item[keyword = "go"]`)
	f, err := q.NewFilter()
	if err != nil {
		panic(err)
	}
	for _, doc := range []string{
		"<news><item><keyword>go</keyword></item></news>",
		"<news><item><keyword>xml</keyword></item></news>",
	} {
		ok, _ := f.MatchString(doc)
		fmt.Println(ok)
	}
	// Output:
	// true
	// false
}

func ExampleQuery_Evaluate() {
	q := streamxpath.MustCompile("/library[open]/book")
	vals, err := q.Evaluate("<library><open/><book>Dune</book><book>Solaris</book></library>")
	if err != nil {
		panic(err)
	}
	fmt.Println(vals)
	// Output: [Dune Solaris]
}

func ExampleQuery_NewStreamEvaluator() {
	q := streamxpath.MustCompile(`/orders/order[status = "paid"]/id`)
	se, err := q.NewStreamEvaluator()
	if err != nil {
		panic(err)
	}
	vals, err := se.EvaluateString(
		"<orders>" +
			"<order><id>17</id><status>paid</status></order>" +
			"<order><id>18</id><status>open</status></order>" +
			"</orders>")
	if err != nil {
		panic(err)
	}
	fmt.Println(vals)
	// Output: [17]
}

func ExampleQuery_Analyze() {
	q := streamxpath.MustCompile("/a[c[.//e and f] and b > 5]")
	a := q.Analyze()
	fmt.Printf("size=%d frontier=%d redundancy-free=%v streamable=%v\n",
		a.Size, a.FrontierSize, a.RedundancyFree, a.Streamable)
	// Output: size=6 frontier=3 redundancy-free=true streamable=true
}

func ExampleQuery_VerifyFrontierLowerBound() {
	q := streamxpath.MustCompile("/a[b and c]")
	rep, err := q.VerifyFrontierLowerBound(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("FS=%d family=%d distinct filter states=%d\n",
		rep.Parameter, rep.FamilySize, rep.DistinctStates)
	// Output: FS=2 family=4 distinct filter states=4
}
