#!/usr/bin/env bash
# bench.sh — run the hot-path benchmarks and snapshot the results as JSON
# so the performance trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench.sh [output.json]          # default: BENCH_pr10.json
#   BENCHTIME=1s scripts/bench.sh           # longer, steadier numbers
#   CPUS=1,2,4,8 scripts/bench.sh           # parallel-arm scaling sweep
#   BENCH_FILTER='^BenchmarkMatchReader' scripts/bench.sh  # pinned subset
#   BENCH_PARALLEL=0 scripts/bench.sh       # skip the -cpu sweep pass
#   BENCH_SERVER=1 scripts/bench.sh         # also load-test xpfilterd over
#                                           # HTTP -> BENCH_pr8_server.json
#   BENCH_SERVER_CLIENTS=64 BENCH_SERVER_REQUESTS=5000  # its knobs
#
# The main pass runs the sequential hot-path arms — including the
# chunked-vs-buffered BenchmarkMatchReader family, the
# BenchmarkMatchReaderNoMatch negative-early-exit family, and the
# BenchmarkFanoutRouting content-based-routing family (delivered
# bytes/s of fragment extraction, with the boolean baseline pinned at
# 0 allocs/event), with alloc tracking — and the second pass runs the
# parallel dissemination arms
# (BenchmarkParallelFilterSet) across the CPUS list so the snapshot
# records the cores-vs-throughput curve. BENCH_FILTER narrows the main
# pass to a pinned arm subset (the CI regression gate uses this to
# compare stable arms only; see scripts/benchcmp).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr10.json}"
benchtime="${BENCHTIME:-1x}"
cpus="${CPUS:-1,2,4}"
filter="${BENCH_FILTER:-^BenchmarkFilterSet$|^BenchmarkFilterSetLimits$|Throughput|^BenchmarkMatchReader$|^BenchmarkMatchReaderNoMatch$|^BenchmarkTokenizer$|^BenchmarkFanoutRouting$}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" . | tee "$raw"
if [ "${BENCH_PARALLEL:-1}" != "0" ]; then
  go test -run '^$' -bench 'Parallel' -benchtime "$benchtime" -cpu "$cpus" . | tee -a "$raw"
fi

{
  printf '{\n'
  printf '  "captured": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "cpus": "%s",\n' "$cpus"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; iters = $2
      ns = ""; bop = ""; allocs = ""; extra = ""; frac = ""; mbs = ""
      for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "ns/event")  extra = $i
        if ($(i+1) == "readFrac")  frac = $i
        if ($(i+1) == "MB/s")      mbs = $i
      }
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters
      if (ns != "")     printf ", \"ns_per_op\": %s", ns
      if (extra != "")  printf ", \"ns_per_event\": %s", extra
      if (frac != "")   printf ", \"read_frac\": %s", frac
      if (mbs != "")    printf ", \"mb_per_s\": %s", mbs
      if (bop != "")    printf ", \"bytes_per_op\": %s", bop
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
    END { printf "\n" }
  ' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out"

# Optional server arm: boot xpfilterd on an ephemeral port and measure
# end-to-end dissemination throughput (HTTP + JSON + engine) with the
# xpload harness. Kept off the default path — it measures the serving
# layer, not the library hot path the regression gate tracks.
if [ "${BENCH_SERVER:-0}" = "1" ]; then
  server_out="${BENCH_SERVER_OUT:-BENCH_pr8_server.json}"
  workdir="$(mktemp -d)"
  server_pid=""
  cleanup_server() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
  }
  trap cleanup_server EXIT

  go build -o "$workdir/xpfilterd" ./cmd/xpfilterd
  go build -o "$workdir/xpload" ./cmd/xpload
  "$workdir/xpfilterd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    >"$workdir/daemon.log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
  done
  [ -s "$workdir/addr" ] || { echo "xpfilterd never came up"; cat "$workdir/daemon.log"; exit 1; }

  "$workdir/xpload" -addr "$(cat "$workdir/addr")" \
    -clients "${BENCH_SERVER_CLIENTS:-64}" \
    -requests "${BENCH_SERVER_REQUESTS:-5000}" \
    -o "$server_out"
  kill -TERM "$server_pid" && wait "$server_pid"
  server_pid=""
  echo "wrote $server_out"
fi
