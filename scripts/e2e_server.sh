#!/usr/bin/env bash
# e2e_server.sh — end-to-end smoke of the xpfilterd daemon: build it
# (race-instrumented by default), boot it on an ephemeral port, exercise
# subscription CRUD plus buffered and chunked ingest over real HTTP,
# drive webhook delivery through a fault-injecting receiver (forcing a
# retry), assert fragment extraction end to end (the /match response's
# fragments object AND the webhook body carry the matched subtree
# itself), scrape /metrics, drive a short xpload run, then SIGTERM it
# and assert a clean graceful-drain exit.
#
# Usage:
#   scripts/e2e_server.sh            # race build, 16-client load smoke
#   E2E_RACE=0 scripts/e2e_server.sh # plain build (faster)
#   E2E_CLIENTS=64 E2E_REQUESTS=5000 scripts/e2e_server.sh
set -euo pipefail
cd "$(dirname "$0")/.."

race_flag="-race"
[ "${E2E_RACE:-1}" = "0" ] && race_flag=""
clients="${E2E_CLIENTS:-16}"
requests="${E2E_REQUESTS:-400}"

work="$(mktemp -d)"
daemon_pid=""
sink_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  [ -n "$sink_pid" ] && kill -9 "$sink_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build $race_flag -o "$work/xpfilterd" ./cmd/xpfilterd
go build -o "$work/xpload" ./cmd/xpload

echo "== version flags"
"$work/xpfilterd" -version | grep -q '^xpfilterd '
"$work/xpload" -version | grep -q '^xpload '

echo "== boot on an ephemeral port"
"$work/xpfilterd" -addr 127.0.0.1:0 -addr-file "$work/addr" \
  -delivery-backoff 10ms -delivery-backoff-max 50ms \
  >"$work/daemon.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
  [ -s "$work/addr" ] && break
  sleep 0.1
done
[ -s "$work/addr" ] || { echo "daemon never wrote addr-file"; cat "$work/daemon.log"; exit 1; }
addr="$(cat "$work/addr")"
base="http://$addr"
echo "   $base"

fail() { echo "FAIL: $*"; cat "$work/daemon.log"; exit 1; }

echo "== healthz"
curl -fsS "$base/healthz" | grep -q '"ok"' || fail "healthz"

echo "== subscription CRUD"
code=$(curl -s -o "$work/out" -w '%{http_code}' -X PUT "$base/v1/tenants/e2e/subscriptions/items" -d '/news/item')
[ "$code" = 201 ] || fail "PUT subscription: $code $(cat "$work/out")"
code=$(curl -s -o "$work/out" -w '%{http_code}' -X PUT "$base/v1/tenants/e2e/subscriptions/deep" -d '//item[keyword]')
[ "$code" = 201 ] || fail "PUT second subscription: $code"
curl -fsS "$base/v1/tenants/e2e/subscriptions" | grep -q '"items"' || fail "list subscriptions"
code=$(curl -s -o "$work/out" -w '%{http_code}' -X PUT "$base/v1/tenants/e2e/subscriptions/bad" -d '/news[')
[ "$code" = 400 ] || fail "invalid query not rejected: $code"
grep -q 'invalid_query' "$work/out" || fail "invalid query lacks typed code"

echo "== buffered ingest"
doc='<news><item><title>t</title><keyword>go</keyword></item></news>'
curl -fsS -X POST "$base/v1/tenants/e2e/match" -d "$doc" >"$work/verdict" || fail "buffered match"
grep -q '"items"' "$work/verdict" || fail "buffered verdict missing items: $(cat "$work/verdict")"
grep -q '"deep"' "$work/verdict" || fail "buffered verdict missing deep"

echo "== chunked ingest"
printf '%s' "$doc" | curl -fsS -X POST -H 'Transfer-Encoding: chunked' \
  --data-binary @- "$base/v1/tenants/e2e/match" >"$work/verdict2" || fail "chunked match"
grep -q '"items"' "$work/verdict2" || fail "chunked verdict: $(cat "$work/verdict2")"

echo "== delete subscription"
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$base/v1/tenants/e2e/subscriptions/deep")
[ "$code" = 200 ] || fail "DELETE subscription: $code"

echo "== metrics"
curl -fsS "$base/metrics" >"$work/metrics"
grep -q 'xpfilterd_documents_total{tenant="e2e"} 2' "$work/metrics" || fail "documents_total"
grep -q 'xpfilterd_subscriptions{tenant="e2e"} 1' "$work/metrics" || fail "subscriptions gauge"
grep -q 'xpfilterd_http_requests_total' "$work/metrics" || fail "http_requests_total"

echo "== webhook delivery through a flaky receiver"
"$work/xpload" -sink -addr 127.0.0.1:0 -addr-file "$work/sink.addr" -sink-fail-first 1 \
  >"$work/sink.out" 2>"$work/sink.log" &
sink_pid=$!
for _ in $(seq 1 100); do
  [ -s "$work/sink.addr" ] && break
  sleep 0.1
done
[ -s "$work/sink.addr" ] || { echo "sink never wrote addr-file"; cat "$work/sink.log"; exit 1; }
sink_addr="$(cat "$work/sink.addr")"
code=$(curl -s -o "$work/out" -w '%{http_code}' -X PUT "$base/v1/tenants/e2e/subscriptions/hooked" \
  -d "{\"query\": \"/news/item\", \"webhook\": {\"url\": \"http://$sink_addr/hook\"}}")
[ "$code" = 201 ] || fail "PUT webhook subscription: $code $(cat "$work/out")"
curl -fsS -X POST "$base/v1/tenants/e2e/match" -d "$doc" >/dev/null || fail "webhook match"
# The sink 500s the first attempt, so success proves a retry happened.
delivered=""
for _ in $(seq 1 100); do
  delivered="$(curl -fsS "http://$sink_addr/stats" | grep -o '"delivered":[0-9]*' | cut -d: -f2)"
  [ "$delivered" = 1 ] && break
  sleep 0.1
done
[ "$delivered" = 1 ] || fail "webhook never delivered after retry: $(curl -fsS "http://$sink_addr/stats")"
curl -fsS "$base/metrics" >"$work/metrics2"
attempts="$(grep 'xpfilterd_delivery_attempts_total{tenant="e2e"}' "$work/metrics2" | awk '{print $2}')"
[ -n "$attempts" ] && [ "$attempts" -ge 2 ] || fail "delivery_attempts_total=$attempts, want >= 2"
grep -q 'xpfilterd_delivery_successes_total{tenant="e2e"} 1' "$work/metrics2" || fail "delivery_successes_total"
grep -q 'xpfilterd_delivery_retries_total{tenant="e2e"} 1' "$work/metrics2" || fail "delivery_retries_total"
curl -fsS "$base/v1/tenants/e2e/deadletters" | grep -q '"deadletters":\[\]' || fail "dead-letter ring not empty"
curl -s -o /dev/null -X DELETE "$base/v1/tenants/e2e/subscriptions/hooked"

echo "== fragment extraction: response fragments and webhook subtree body"
code=$(curl -s -o "$work/out" -w '%{http_code}' -X PUT "$base/v1/tenants/e2e/subscriptions/router" \
  -d "{\"query\": \"//item[keyword]\", \"extract\": true, \"webhook\": {\"url\": \"http://$sink_addr/hook\"}}")
[ "$code" = 201 ] || fail "PUT extraction subscription: $code $(cat "$work/out")"
want_frag='<item><title>t</title><keyword>go</keyword></item>'
curl -fsS -X POST "$base/v1/tenants/e2e/match" -d "$doc" >"$work/verdict3" || fail "extraction match"
grep -qF "\"router\":\"${want_frag//\"/\\\"}\"" "$work/verdict3" \
  || fail "match response lacks extracted fragment: $(cat "$work/verdict3")"
# The webhook body must be the matched subtree itself (not a JSON
# envelope), delivered as application/xml.
delivered2=""
for _ in $(seq 1 100); do
  delivered2="$(curl -fsS "http://$sink_addr/stats" | grep -o '"delivered":[0-9]*' | cut -d: -f2)"
  [ "$delivered2" = 2 ] && break
  sleep 0.1
done
[ "$delivered2" = 2 ] || fail "extraction webhook never delivered: $(curl -fsS "http://$sink_addr/stats")"
curl -fsS -D "$work/last.hdr" "http://$sink_addr/last" >"$work/last.body" || fail "sink /last"
[ "$(cat "$work/last.body")" = "$want_frag" ] \
  || fail "webhook body is not the matched subtree: $(cat "$work/last.body")"
grep -qi 'content-type: application/xml' "$work/last.hdr" || fail "webhook body not application/xml"
curl -s -o /dev/null -X DELETE "$base/v1/tenants/e2e/subscriptions/router"
kill -TERM "$sink_pid" 2>/dev/null || true
wait "$sink_pid" 2>/dev/null || true
sink_pid=""

echo "== load smoke ($clients clients, $requests requests)"
"$work/xpload" -addr "$addr" -clients "$clients" -requests "$requests" \
  -o "$work/load.json" || fail "xpload reported errors"

echo "== graceful drain on SIGTERM"
kill -TERM "$daemon_pid"
drain_rc=0
wait "$daemon_pid" || drain_rc=$?
daemon_pid=""
[ "$drain_rc" = 0 ] || fail "daemon exit code $drain_rc, want 0"
grep -q 'msg=drained' "$work/daemon.log" || fail "daemon never logged drained"

echo "OK: e2e server smoke passed"
