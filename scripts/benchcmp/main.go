// Command benchcmp compares two bench.sh JSON snapshots and exits
// non-zero on regressions — the CI benchmark gate.
//
// Usage:
//
//	go run ./scripts/benchcmp -baseline BENCH_pr5.json -current ci.json
//
// Two rules, matching arms by exact benchmark name:
//
//   - Time: an arm whose ns/op grew by more than -time-tolerance
//     (default 0.15, i.e. 15%) regresses. Arms faster than -min-ns
//     (default 0: compare everything) are skipped as noise-dominated.
//   - Allocations: an arm that was allocation-free in the baseline
//     (allocs/op == 0) must stay allocation-free; ANY growth fails.
//     The zero-allocation steady state is a hard invariant of the hot
//     paths, not a statistical property, so no tolerance applies.
//
// Arms present on only one side (e.g. -cpu suffixed arms from a host
// with a different core count, or newly added arms) are reported and
// skipped. -allocs-only disables the time rule for cross-host runs
// where absolute ns/op is not comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type snapshot struct {
	Captured   string `json:"captured"`
	Go         string `json:"go"`
	Benchtime  string `json:"benchtime"`
	Benchmarks []arm  `json:"benchmarks"`
}

type arm struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op"`
	NsPerEvent  *float64 `json:"ns_per_event"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline snapshot (bench.sh JSON)")
	currentPath := flag.String("current", "", "freshly captured snapshot to check")
	timeTolerance := flag.Float64("time-tolerance", 0.15, "allowed fractional ns/op growth before an arm counts as regressed")
	minNs := flag.Float64("min-ns", 0, "skip the time rule for arms whose baseline ns/op is below this (noise floor)")
	allocsOnly := flag.Bool("allocs-only", false, "only enforce the zero-alloc rule (for cross-host comparisons)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: %s (%s, benchtime %s)\n", *baselinePath, base.Captured, base.Benchtime)
	fmt.Printf("current:  %s (%s, benchtime %s)\n", *currentPath, cur.Captured, cur.Benchtime)

	curByName := map[string]arm{}
	for _, a := range cur.Benchmarks {
		curByName[a.Name] = a
	}
	regressions, compared, skipped := 0, 0, 0
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Printf("  skip %-60s (not in current run)\n", b.Name)
			skipped++
			continue
		}
		delete(curByName, b.Name)
		compared++
		if b.AllocsPerOp != nil && *b.AllocsPerOp == 0 {
			if c.AllocsPerOp != nil && *c.AllocsPerOp > 0 {
				fmt.Printf("  FAIL %-60s allocs/op 0 -> %.0f (zero-alloc arm regressed)\n", b.Name, *c.AllocsPerOp)
				regressions++
			}
		}
		if *allocsOnly || b.NsPerOp == nil || c.NsPerOp == nil {
			continue
		}
		if *b.NsPerOp < *minNs {
			continue
		}
		ratio := *c.NsPerOp / *b.NsPerOp
		if ratio > 1+*timeTolerance {
			fmt.Printf("  FAIL %-60s ns/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)\n",
				b.Name, *b.NsPerOp, *c.NsPerOp, (ratio-1)*100, *timeTolerance*100)
			regressions++
		}
	}
	for name := range curByName {
		fmt.Printf("  new  %-60s (not in baseline)\n", name)
	}
	fmt.Printf("compared %d arms, %d skipped, %d regression(s)\n", compared, skipped, regressions)
	if regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
	os.Exit(1)
}
