// Benchmark harness: one benchmark per experiment of DESIGN.md §3. Each
// reports, besides ns/op, the custom metrics the paper's tables are stated
// in (bits of memory, automaton states), via b.ReportMetric. Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records a captured run and compares the shapes against
// the paper's claims.
package streamxpath_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"streamxpath"
	"streamxpath/internal/automaton"
	"streamxpath/internal/commcc"
	"streamxpath/internal/core"
	"streamxpath/internal/naive"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
	"streamxpath/internal/streameval"
	"streamxpath/internal/workload"
)

// BenchmarkFrontierLowerBound (E3): generate and verify the Theorem 4.2
// fooling set for the paper's running query.
func BenchmarkFrontierLowerBound(b *testing.B) {
	q := streamxpath.MustCompile("/a[c[.//e and f] and b > 5]")
	var rep *streamxpath.LowerBoundReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = q.VerifyFrontierLowerBound(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Parameter), "FS(Q)")
	b.ReportMetric(float64(rep.DistinctStates), "states")
	b.ReportMetric(float64(rep.MaxMessageBits), "stateBits")
}

// BenchmarkGeneralFrontierBound (E9): the Theorem 7.1 construction across
// frontier sizes.
func BenchmarkGeneralFrontierBound(b *testing.B) {
	for _, src := range []string{
		"/a[b and c]",
		"/a[b[x and y] and c]",
		"/a[b > 5 and c < 3 and e and f]",
	} {
		q := streamxpath.MustCompile(src)
		b.Run(fmt.Sprintf("FS=%d", q.FrontierSize()), func(b *testing.B) {
			var rep *streamxpath.LowerBoundReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = q.VerifyFrontierLowerBound(64)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.DistinctStates), "states")
			b.ReportMetric(float64(rep.MaxMessageBits), "stateBits")
		})
	}
}

// BenchmarkRecursionLowerBound (E4): the DISJ reduction of Theorem 4.5,
// sweeping the recursion budget r. The stateBits metric must grow linearly
// in r (the Ω(r) bound).
func BenchmarkRecursionLowerBound(b *testing.B) {
	q := streamxpath.MustCompile("//a[b and c]")
	for _, r := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var rep *streamxpath.LowerBoundReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = q.VerifyRecursionLowerBound(r, 64)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MaxMessageBits), "stateBits")
			b.ReportMetric(float64(rep.MaxMessageBits)/float64(r), "stateBits/r")
		})
	}
}

// BenchmarkDepthLowerBound (E5): the depth family of Theorem 4.6, sweeping
// d. The stateBits metric must grow like log d, not d.
func BenchmarkDepthLowerBound(b *testing.B) {
	q := streamxpath.MustCompile("/a/b")
	for _, d := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var rep *streamxpath.LowerBoundReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = q.VerifyDepthLowerBound(d, 6)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MaxMessageBits), "stateBits")
		})
	}
}

// BenchmarkSpaceVsRecursion (E14): filter memory on fully recursive
// documents; bits must scale linearly with r (Theorem 8.8's |Q|·r term).
func BenchmarkSpaceVsRecursion(b *testing.B) {
	q := query.MustParse("//a[b and c]")
	for _, r := range []int{4, 16, 64, 256} {
		events := workload.FullyRecursive(r).Events()
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			f := core.MustCompile(q)
			var bits int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				bits = f.Stats().EstimatedBits(q.Size())
			}
			b.ReportMetric(float64(bits), "estBits")
			b.ReportMetric(float64(bits)/float64(r), "estBits/r")
		})
	}
}

// BenchmarkSpaceVsFrontier (E15): filter memory versus FS(Q) on matching
// wide documents; bits must scale linearly with FS (Theorem 8.8's
// pc-free/closure-free regime).
func BenchmarkSpaceVsFrontier(b *testing.B) {
	for _, fs := range []int{2, 8, 32, 128} {
		q := workload.FrontierQuery(fs)
		events := workload.FrontierDoc(fs).Events()
		b.Run(fmt.Sprintf("FS=%d", fs), func(b *testing.B) {
			f := core.MustCompile(q)
			var bits int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				bits = f.Stats().EstimatedBits(q.Size())
			}
			b.ReportMetric(float64(bits), "estBits")
			b.ReportMetric(float64(bits)/float64(fs), "estBits/FS")
		})
	}
}

// BenchmarkSpaceVsDepth (E16): filter memory on deep documents; bits must
// scale logarithmically with d.
func BenchmarkSpaceVsDepth(b *testing.B) {
	q := query.MustParse("/a//b")
	for _, d := range []int{16, 128, 1024, 8192} {
		events := workload.Deep(d).Events()
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			f := core.MustCompile(q)
			var bits int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				bits = f.Stats().EstimatedBits(q.Size())
			}
			b.ReportMetric(float64(bits), "estBits")
		})
	}
}

// BenchmarkThroughput (E17): events per second over the news corpus; time
// must be linear in |D| (constant ns/event). The base arms stream
// pre-materialized events through the core filter; the /bytes arms run
// the full pipeline — byte tokenizer included — through the
// interned-symbol fast path (Filter.MatchBytes), which despite doing
// strictly more work per op allocates far less.
func BenchmarkThroughput(b *testing.B) {
	q := query.MustParse(`//item[keyword = "go" and priority > 5]`)
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{10, 100, 1000} {
		events := workload.RandomNewsFeed(rng, n).Events()
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			f := core.MustCompile(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
		b.Run(fmt.Sprintf("items=%d/bytes", n), func(b *testing.B) {
			xml, err := sax.SerializeString(events)
			if err != nil {
				b.Fatal(err)
			}
			doc := []byte(xml)
			f, err := streamxpath.MustCompile(`//item[keyword = "go" and priority > 5]`).NewFilter()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.MatchBytes(doc); err != nil { // warm symbols and scratch
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.MatchBytes(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
	}
}

// BenchmarkDFABlowupVsFilter (E18): eager-DFA state count versus the
// filter's live tuples on the //a/*^k/b family. The DFA metric grows
// exponentially in k; the filter metric stays polynomial.
func BenchmarkDFABlowupVsFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	for _, k := range []int{4, 8, 12} {
		q := workload.StarChainQuery(k)
		doc := workload.RandomTree(rng, []string{"a", "b", "x", "y"}, nil, k+4, 3).Events()
		b.Run(fmt.Sprintf("k=%d/eagerDFA", k), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				nfa, err := automaton.FromQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				states, _ = automaton.EagerStateCount(nfa, 1_000_000)
			}
			b.ReportMetric(float64(states), "states")
		})
		b.Run(fmt.Sprintf("k=%d/filter", k), func(b *testing.B) {
			f := core.MustCompile(q)
			var tuples int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(doc); err != nil {
					b.Fatal(err)
				}
				tuples = f.Stats().PeakTuples
			}
			b.ReportMetric(float64(tuples), "tuples")
		})
	}
}

// BenchmarkLazyDFAVsFilterThroughput (E18b): time comparison of the lazy
// DFA and the filter on the same linear query, showing the filter's
// space savings do not cost significant time.
func BenchmarkLazyDFAVsFilterThroughput(b *testing.B) {
	q := query.MustParse("/a//b")
	events := workload.Deep(64).Events()
	b.Run("lazyDFA", func(b *testing.B) {
		nfa, err := automaton.FromQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		d := automaton.NewLazyDFA(nfa)
		for i := 0; i < b.N; i++ {
			d.Reset()
			if _, err := d.ProcessAll(events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter", func(b *testing.B) {
		f := core.MustCompile(q)
		for i := 0; i < b.N; i++ {
			f.Reset()
			if _, err := f.ProcessAll(events); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFilterVsNaive (E20): memory of the streaming filter versus the
// buffer-everything baseline on a growing corpus.
func BenchmarkFilterVsNaive(b *testing.B) {
	q := query.MustParse(`//item[keyword = "go" and priority > 5]`)
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{100, 1000} {
		events := workload.RandomNewsFeed(rng, n).Events()
		b.Run(fmt.Sprintf("items=%d/naive", n), func(b *testing.B) {
			e := naive.New(q)
			var bytes int
			for i := 0; i < b.N; i++ {
				e.Reset()
				if _, err := e.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				bytes = e.BufferedBytes()
			}
			b.ReportMetric(float64(bytes), "memBytes")
		})
		b.Run(fmt.Sprintf("items=%d/filter", n), func(b *testing.B) {
			f := core.MustCompile(q)
			var bytes int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				bytes = (f.Stats().EstimatedBits(q.Size()) + 7) / 8
			}
			b.ReportMetric(float64(bytes), "memBytes")
		})
	}
}

// BenchmarkReductionProtocol (E19): cost of one Lemma 3.7 cut (snapshot +
// restore) relative to plain streaming.
func BenchmarkReductionProtocol(b *testing.B) {
	q := query.MustParse("/a[c[.//e and f] and b > 5]")
	events := sax.MustParse("<a><c><x><e/></x><f/></c><b>6</b></a>")
	half := len(events) / 2
	b.Run("uncut", func(b *testing.B) {
		f := core.MustCompile(q)
		for i := 0; i < b.N; i++ {
			f.Reset()
			if _, err := f.ProcessAll(events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-cut", func(b *testing.B) {
		var bits int
		for i := 0; i < b.N; i++ {
			run, err := commcc.RunProtocol(q, [][]sax.Event{events[:half], events[half:]})
			if err != nil {
				b.Fatal(err)
			}
			bits = run.MaxMessageBits()
		}
		b.ReportMetric(float64(bits), "stateBits")
	})
}

// BenchmarkCompile: query compilation cost (parser + truth sets + fragment
// checks).
func BenchmarkCompile(b *testing.B) {
	src := "/a[*/b > 5 and c/b//d > 12 and .//d < 30]"
	for i := 0; i < b.N; i++ {
		q, err := streamxpath.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.NewFilter(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot: cost and size of state serialization mid-stream.
func BenchmarkSnapshot(b *testing.B) {
	q := query.MustParse("//a[b and c]")
	events := workload.FullyRecursive(32).Events()
	f := core.MustCompile(q)
	for _, e := range events[:len(events)/2] {
		if err := f.Process(e); err != nil {
			b.Fatal(err)
		}
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size = len(f.Snapshot())
	}
	b.ReportMetric(float64(size*8), "stateBits")
}

// BenchmarkAblationBufferAll ablates the unrestricted-leaf optimization of
// internal/core: with BufferAllLeaves the filter buffers every leaf
// candidate's text as in the paper's literal pseudo-code. Results are
// identical; the buffer metric shows what the optimization saves on
// text-heavy documents.
func BenchmarkAblationBufferAll(b *testing.B) {
	q := query.MustParse("//item[title and .//p]") // unrestricted leaves
	rng := rand.New(rand.NewSource(21))
	events := workload.RandomNewsFeed(rng, 200).Events()
	for _, opt := range []struct {
		name string
		o    core.Options
	}{
		{"optimized", core.Options{}},
		{"buffer-all", core.Options{BufferAllLeaves: true}},
	} {
		b.Run(opt.name, func(b *testing.B) {
			f, err := core.CompileOpts(q, opt.o)
			if err != nil {
				b.Fatal(err)
			}
			var buf int
			for i := 0; i < b.N; i++ {
				f.Reset()
				if _, err := f.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				buf = f.Stats().PeakBufferBytes
			}
			b.ReportMetric(float64(buf), "bufferBytes")
		})
	}
}

// BenchmarkStreamEvalBuffering (E21): full-evaluation buffering versus
// evidence delay — the follow-up work's inherent-buffering phenomenon.
func BenchmarkStreamEvalBuffering(b *testing.B) {
	q := query.MustParse("/a[c]/b")
	for _, n := range []int{10, 100, 1000} {
		var sb strings.Builder
		sb.WriteString("<a>")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "<b>v%d</b>", i)
		}
		sb.WriteString("<c/></a>")
		events := sax.MustParse(sb.String())
		b.Run(fmt.Sprintf("delay=%d", n), func(b *testing.B) {
			e := streameval.MustCompile(q)
			var pending int
			for i := 0; i < b.N; i++ {
				e.Reset()
				if _, err := e.ProcessAll(events); err != nil {
					b.Fatal(err)
				}
				pending = e.Stats().PeakPendingCandidates
			}
			b.ReportMetric(float64(pending), "pendingValues")
		})
	}
}

// --- the dissemination benchmark family (E22) ---
//
// One document, many standing subscriptions. The "engine" arms run the
// shared multi-query engine behind FilterSet; the "fanout" arms replicate
// the seed's per-filter loop (tokenize once, feed every event to every
// filter, monotone early exit per filter) so future PRs can track the
// shared-evaluation speedup in BENCH_*.json. Subscription topologies:
//
//   - shared:   //catalog/item/f<i> — all subscriptions share a two-step
//     prefix; per-event cost of the engine depends on the distinct active
//     states, not the subscription count.
//   - disjoint: //p<i>/c<i> — nothing shared; the engine's worst case.
//   - predshared: //catalog/item[priority > k]/f<i> — shared predicated
//     steps exercising the trie route.

// disseminationSubs builds a subscription workload.
func disseminationSubs(topology string, n int) []string {
	subs := make([]string, n)
	for i := range subs {
		switch topology {
		case "shared":
			subs[i] = fmt.Sprintf("//catalog/item/f%d", i)
		case "disjoint":
			subs[i] = fmt.Sprintf("//p%d/c%d", i, i)
		case "predshared":
			subs[i] = fmt.Sprintf("//catalog/item[priority > %d]/f%d", i%10, i%(n/10+1))
		}
	}
	return subs
}

// disseminationDoc builds the feed document: a catalog of items carrying
// a few of the subscribed leaf names, so a small fraction of
// subscriptions match.
func disseminationDoc(items int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < items; j++ {
		fmt.Fprintf(&b, "<item><priority>%d</priority><f%d/><f%d/></item>", j%12, j, j+items)
	}
	b.WriteString("</catalog>")
	return b.String()
}

// seedFanout replicates the seed FilterSet.MatchReader: one tokenizer
// pass fanned out to every subscription's standalone filter.
func seedFanout(b *testing.B, filters []*core.Filter, doc string) int {
	for _, f := range filters {
		f.Reset()
	}
	done := make([]bool, len(filters))
	tok := sax.NewTokenizer(strings.NewReader(doc))
	for {
		e, err := tok.Next()
		if err != nil {
			break
		}
		for i, f := range filters {
			if done[i] && e.Kind != sax.EndDocument {
				continue
			}
			if err := f.Process(e); err != nil {
				b.Fatal(err)
			}
			if !done[i] && f.WouldMatchIfClosedNow() {
				done[i] = true
			}
		}
	}
	matched := 0
	for _, f := range filters {
		if f.Matched() {
			matched++
		}
	}
	return matched
}

// benchEngine drives the shared engine through the interned-symbol byte
// path (FilterSet.MatchBytes) — tokenization included, like the fanout
// arm it is compared against.
func benchEngine(b *testing.B, subs []string, doc string) {
	s := streamxpath.NewFilterSet()
	for i, src := range subs {
		if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
			b.Fatal(err)
		}
	}
	docBytes := []byte(doc)
	if _, err := s.MatchBytes(docBytes); err != nil { // compile + warm transition tables
		b.Fatal(err)
	}
	events := len(sax.MustParse(doc))
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		ids, err := s.MatchBytes(docBytes)
		if err != nil {
			b.Fatal(err)
		}
		matched = len(ids)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	b.ReportMetric(float64(matched), "matched")
}

func benchFanout(b *testing.B, subs []string, doc string) {
	var filters []*core.Filter
	for _, src := range subs {
		f, err := core.Compile(query.MustParse(src))
		if err != nil {
			b.Fatal(err)
		}
		filters = append(filters, f)
	}
	events := len(sax.MustParse(doc))
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = seedFanout(b, filters, doc)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	b.ReportMetric(float64(matched), "matched")
}

// BenchmarkFilterSet is the full dissemination matrix: subscription count
// × prefix topology × engine/fanout.
func BenchmarkFilterSet(b *testing.B) {
	doc := disseminationDoc(40)
	for _, topology := range []string{"shared", "disjoint", "predshared"} {
		for _, n := range []int{100, 1000, 10000} {
			subs := disseminationSubs(topology, n)
			b.Run(fmt.Sprintf("%s/subs=%d/engine", topology, n), func(b *testing.B) {
				benchEngine(b, subs, doc)
			})
			b.Run(fmt.Sprintf("%s/subs=%d/fanout", topology, n), func(b *testing.B) {
				benchFanout(b, subs, doc)
			})
		}
	}
}

// BenchmarkDissemination is the compact engine-vs-fanout pair (1k shared
// subscriptions) run as the CI smoke benchmark.
func BenchmarkDissemination(b *testing.B) {
	subs := disseminationSubs("shared", 1000)
	doc := disseminationDoc(40)
	b.Run("engine", func(b *testing.B) { benchEngine(b, subs, doc) })
	b.Run("fanout", func(b *testing.B) { benchFanout(b, subs, doc) })
}

// BenchmarkFilterSetLimits is the budget-mode arm (PR 7): the compact
// dissemination workload with every resource budget enabled and never
// hit. The limit checks are plain integer compares against
// zero-disabled budgets, so this arm must stay allocation-free and
// within the bench gate's noise band of the unlimited engine arm.
func BenchmarkFilterSetLimits(b *testing.B) {
	subs := disseminationSubs("shared", 1000)
	doc := disseminationDoc(40)
	s := streamxpath.NewFilterSet()
	for i, src := range subs {
		if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
			b.Fatal(err)
		}
	}
	s.SetLimits(streamxpath.Limits{
		MaxDepth:         1 << 16,
		MaxTokenBytes:    1 << 24,
		MaxBufferedBytes: 1 << 24,
		MaxLiveTuples:    1 << 24,
		MaxDocBytes:      1 << 30,
	})
	docBytes := []byte(doc)
	if _, err := s.MatchBytes(docBytes); err != nil { // compile + warm transition tables
		b.Fatal(err)
	}
	events := len(sax.MustParse(doc))
	b.ReportAllocs()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		ids, err := s.MatchBytes(docBytes)
		if err != nil {
			b.Fatal(err)
		}
		matched = len(ids)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	b.ReportMetric(float64(matched), "matched")
}

// BenchmarkFanoutRouting is the content-based-routing arm (PR 10): a
// news feed fanned out to N standing topic subscriptions registered
// with extraction, so each matched subscription is handed the matched
// item's subtree — the deliverable payload, not just a verdict. MB/s
// here is DELIVERED bytes per second (sum of fragment lengths per
// document), the figure of merit of a fan-out router. The /bytes arm
// is the whole-buffer zero-copy path, /reader the chunked
// re-serialization path, and /boolean the verdict-only baseline on the
// same subscriptions, which must stay allocation-free.
func BenchmarkFanoutRouting(b *testing.B) {
	const topics = 200
	// Each of 40 items names one of the 200 topics, so ~40 subscriptions
	// receive a fragment per document.
	var sb strings.Builder
	sb.WriteString("<news>")
	for j := 0; j < 40; j++ {
		fmt.Fprintf(&sb, "<item><topic%d></topic%d><title>story %d</title><body>%s</body></item>",
			j%topics, j%topics, j, strings.Repeat("text ", 20))
	}
	sb.WriteString("</news>")
	doc := []byte(sb.String())

	newSet := func(b *testing.B) *streamxpath.FilterSet {
		s := streamxpath.NewFilterSet()
		for i := 0; i < topics; i++ {
			if err := s.AddExtract(fmt.Sprintf("topic%d", i), fmt.Sprintf("//news/item/topic%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.MatchBytes(doc); err != nil { // compile + warm
			b.Fatal(err)
		}
		return s
	}
	delivered := func(res streamxpath.MatchResult) int64 {
		var n int64
		for _, f := range res.Fragments {
			n += int64(len(f.Data))
		}
		return n
	}

	b.Run("bytes", func(b *testing.B) {
		s := newSet(b)
		res, err := s.MatchBytesResult(doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fragments) == 0 {
			b.Fatal("no fragments routed")
		}
		b.SetBytes(delivered(res))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MatchBytesResult(doc); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(res.Fragments)), "fragments")
	})
	b.Run("reader", func(b *testing.B) {
		s := newSet(b)
		s.SetChunkSize(4096)
		res, err := s.MatchReaderResult(bytes.NewReader(doc))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(delivered(res))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MatchReaderResult(bytes.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(res.Fragments)), "fragments")
	})
	b.Run("boolean", func(b *testing.B) {
		s := newSet(b)
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MatchBytes(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- the chunked reader family (PR 4) ---
//
// BenchmarkMatchReader compares the two ways to match a document that
// arrives through an io.Reader: buffer it whole and run MatchBytes (the
// pre-PR-4 shape of every reader entry point) versus streaming it
// through the chunked resumable tokenizer (MatchReader), which holds
// only one chunk plus the unconsumed tail. The /earlyexit arm adds a
// prefix-decidable subscription set on a large document and reports how
// little of it the verdict needed.

func BenchmarkMatchReader(b *testing.B) {
	// 400 of the 1000 subscriptions match, so the verdict is never fully
	// decided mid-stream: the throughput arms measure the whole document,
	// not an early exit (that effect gets its own arm below).
	subs := disseminationSubs("shared", 1000)
	doc := []byte(disseminationDoc(400))
	events := len(sax.MustParse(string(doc)))
	const chunk = 4096 // several chunks per document
	newSet := func(b *testing.B) *streamxpath.FilterSet {
		s := streamxpath.NewFilterSet()
		for i, src := range subs {
			if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
				b.Fatal(err)
			}
		}
		s.SetChunkSize(chunk)
		if _, err := s.MatchBytes(doc); err != nil { // compile + warm
			b.Fatal(err)
		}
		return s
	}
	b.Run("buffered", func(b *testing.B) {
		// Stage the reader into a reusable buffer, then MatchBytes — the
		// whole-document-materialization baseline.
		s := newSet(b)
		r := bytes.NewReader(doc)
		buf := make([]byte, 0, len(doc))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(doc)
			buf = buf[:0]
			for {
				if len(buf) == cap(buf) {
					buf = append(buf, 0)[:len(buf)]
				}
				n, err := r.Read(buf[len(buf):cap(buf)])
				buf = buf[:len(buf)+n]
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.MatchBytes(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	})
	b.Run("chunked", func(b *testing.B) {
		s := newSet(b)
		r := bytes.NewReader(doc)
		for i := 0; i < 3; i++ { // warm the tail buffer and scratch
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	})
	b.Run("earlyexit", func(b *testing.B) {
		// One prefix-decidable subscription over a much larger document
		// (~20x the chunk size): the reader is abandoned as soon as the
		// verdict latches, after the first default-sized chunk. readFrac
		// is the fraction of the document consumed.
		big := []byte(disseminationDoc(20000))
		s := streamxpath.NewFilterSet()
		if err := s.Add("root", "//catalog"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.MatchBytes(big); err != nil {
			b.Fatal(err)
		}
		r := bytes.NewReader(big)
		for i := 0; i < 3; i++ {
			r.Reset(big)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(big)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rs := s.ReaderStats()
		if !rs.EarlyExit {
			b.Fatal("expected early exit")
		}
		b.ReportMetric(float64(rs.BytesRead)/float64(len(big)), "readFrac")
	})
	b.Run("chunked-parallel", func(b *testing.B) {
		p := streamxpath.NewParallelFilterSet(0) // shards = GOMAXPROCS
		defer p.Close()
		p.SetChunkSize(chunk)
		for i, src := range subs {
			if err := p.Add(fmt.Sprintf("s%d", i), src); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.MatchBytes(doc); err != nil { // compile + warm symbols
			b.Fatal(err)
		}
		r := bytes.NewReader(doc)
		for i := 0; i < 3; i++ {
			r.Reset(doc)
			if _, err := p.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(doc)
			if _, err := p.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	})
}

// BenchmarkMatchReaderNoMatch quantifies the negative early exit (PR 5)
// on the common dissemination case of a document that matches nothing: a
// /news-rooted subscription set fed a large <catalog> document. The
// buffered arm validates the whole document (MatchBytes has no early
// exit); the chunked-fullread arm adds one universally live descendant
// subscription, pinning the chunked reader to end of input — the pre-
// dead-state-analysis cost; the chunked-negexit arm runs the /news set
// alone, and the dead-state analysis abandons the reader at the first
// chunk. readFrac is the fraction of the document the verdict consumed.
func BenchmarkMatchReaderNoMatch(b *testing.B) {
	// ~1.2MB catalog document with a bounded name vocabulary (unlike
	// disseminationDoc's per-item leaf names, which would drag the known
	// O(n²) symtab-interning cost into every arm's setup).
	var big strings.Builder
	big.WriteString("<catalog>")
	for j := 0; j < 22000; j++ {
		fmt.Fprintf(&big, "<item><priority>%d</priority><f%d/><f%d/></item>", j%12, j%10, (j+5)%10)
	}
	big.WriteString("</catalog>")
	doc := []byte(big.String())
	newsSubs := make([]string, 40)
	for i := range newsSubs {
		switch i % 3 {
		case 0:
			newsSubs[i] = fmt.Sprintf("/news/sports/item/f%d", i)
		case 1:
			newsSubs[i] = fmt.Sprintf("/news//f%d", i)
		default:
			newsSubs[i] = fmt.Sprintf("/news/item[priority > %d]/f%d", i%10, i)
		}
	}
	newSet := func(b *testing.B, extra ...string) *streamxpath.FilterSet {
		s := streamxpath.NewFilterSet()
		for i, src := range append(append([]string(nil), newsSubs...), extra...) {
			if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.MatchBytes(doc); err != nil { // compile + warm
			b.Fatal(err)
		}
		return s
	}
	b.Run("buffered", func(b *testing.B) {
		s := newSet(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MatchBytes(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chunked-fullread", func(b *testing.B) {
		s := newSet(b, "//never/matches")
		r := bytes.NewReader(doc)
		for i := 0; i < 3; i++ { // warm the tail buffer and scratch
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if rs := s.ReaderStats(); rs.EarlyExit {
			b.Fatal("fullread arm exited early")
		}
	})
	b.Run("chunked-negexit", func(b *testing.B) {
		s := newSet(b)
		r := bytes.NewReader(doc)
		for i := 0; i < 3; i++ {
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(doc)
			if _, err := s.MatchReader(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rs := s.ReaderStats()
		if !rs.EarlyExit || !rs.DecidedNegative {
			b.Fatalf("expected negative early exit, got %+v", rs)
		}
		b.ReportMetric(float64(rs.BytesConsumed)/float64(len(doc)), "readFrac")
	})
}

// --- the tokenizer family (PR 6) ---
//
// BenchmarkTokenizer measures the byte tokenizer alone — no matching —
// in MB/s (via b.SetBytes) on two document shapes: an ASCII-heavy news
// corpus (text-dominated, the structural index's best case) and a
// pathological many-attribute document (markup-dominated, the
// per-construct resumability stress). Each shape runs whole-buffer
// (TokenizerBytes over the full document) and chunked (StreamTokenizer
// fed 4KiB windows, so the many-attribute tags span chunk boundaries
// and exercise suspended-tag resumption).

// tokenizerNewsDoc builds an ASCII-heavy news document of n items:
// mostly prose text runs with occasional entities, light markup.
func tokenizerNewsDoc(n int) []byte {
	var b strings.Builder
	b.WriteString("<news>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="%d"><title>Story %d of the day</title>`, i, i)
		fmt.Fprintf(&b, "<body>The quick brown fox jumps over the lazy dog %d times; "+
			"markets rallied while engineers shipped &amp; measured throughput. "+
			"A second sentence pads the run out to realistic paragraph length, "+
			"and a third keeps the ratio of text to markup high.</body>", i)
		fmt.Fprintf(&b, "<keyword>go</keyword><priority>%d</priority></item>", i%10)
	}
	b.WriteString("</news>")
	return []byte(b.String())
}

// tokenizerManyAttrDoc builds the pathological many-attribute document:
// elems elements each carrying attrs attributes, so a single start tag
// is several KiB and spans multiple 4KiB chunks when streamed.
func tokenizerManyAttrDoc(elems, attrs int) []byte {
	var b strings.Builder
	b.WriteString("<doc>")
	for e := 0; e < elems; e++ {
		fmt.Fprintf(&b, "<rec%d", e)
		for a := 0; a < attrs; a++ {
			fmt.Fprintf(&b, ` attr%03d="value-%d-%d"`, a, e, a)
		}
		b.WriteString("/>")
	}
	b.WriteString("</doc>")
	return []byte(b.String())
}

// drainBytes runs a whole-buffer tokenize pass, returning the event count.
func drainBytes(b *testing.B, tok *sax.TokenizerBytes, doc []byte) int {
	tok.Reset(doc)
	n := 0
	for {
		_, err := tok.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
}

// drainStream runs one chunked tokenize pass, returning the event count.
func drainStream(b *testing.B, tok *sax.StreamTokenizer, doc []byte, chunk int) int {
	tok.Reset()
	n := 0
	for pos := 0; pos < len(doc); pos += chunk {
		end := pos + chunk
		if end > len(doc) {
			end = len(doc)
		}
		tok.Feed(doc[pos:end])
		if end == len(doc) {
			tok.Finish()
		}
		for {
			_, err := tok.Next()
			if err == sax.ErrNeedMoreData || err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	return n
}

func BenchmarkTokenizer(b *testing.B) {
	const chunk = 4096
	docs := []struct {
		name string
		doc  []byte
	}{
		{"news", tokenizerNewsDoc(2500)},
		{"manyattr", tokenizerManyAttrDoc(40, 250)},
	}
	for _, tc := range docs {
		b.Run(tc.name+"/whole", func(b *testing.B) {
			tok := sax.NewTokenizerBytes(tc.doc, nil)
			events := drainBytes(b, tok, tc.doc) // warm symbols + scratch
			b.SetBytes(int64(len(tc.doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainBytes(b, tok, tc.doc)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
		})
		b.Run(tc.name+"/chunked", func(b *testing.B) {
			tok := sax.NewStreamTokenizer(nil)
			events := drainStream(b, tok, tc.doc, chunk) // warm tail buffer + scratch
			b.SetBytes(int64(len(tc.doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainStream(b, tok, tc.doc, chunk)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
		})
	}
}

// --- the parallel dissemination family (PR 3) ---
//
// Run with -cpu 1,2,4,8 to trace the scaling curve: the sequential arm
// is flat (one engine, one core), the sharded arm splits one document's
// subscription work across engine shards, and the pool arm matches whole
// documents concurrently on engine replicas. Both parallel modes must
// return byte-identical results to the sequential engine (enforced by
// the equivalence tests); here they must buy throughput.

// mixedSubs builds the ≥1k mixed subscription workload of the scaling
// benchmark: linear shared-prefix, linear disjoint, and predicated
// shared-prefix subscriptions interleaved.
func mixedSubs(n int) []string {
	subs := make([]string, n)
	for i := range subs {
		switch i % 3 {
		case 0:
			subs[i] = fmt.Sprintf("//catalog/item/f%d", i)
		case 1:
			subs[i] = fmt.Sprintf("//p%d/c%d", i, i)
		default:
			subs[i] = fmt.Sprintf("//catalog/item[priority > %d]/f%d", i%10, i%(n/10+1))
		}
	}
	return subs
}

// BenchmarkParallelFilterSet compares the three dissemination engines on
// one document against a large mixed subscription set. The /sharded arm
// sizes its shard count to GOMAXPROCS, so the -cpu list sweeps it.
func BenchmarkParallelFilterSet(b *testing.B) {
	doc := []byte(disseminationDoc(120))
	events := len(sax.MustParse(string(doc)))
	for _, n := range []int{1000, 4000} {
		subs := mixedSubs(n)
		b.Run(fmt.Sprintf("subs=%d/sequential", n), func(b *testing.B) {
			s := streamxpath.NewFilterSet()
			for i, src := range subs {
				if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.MatchBytes(doc); err != nil { // compile + warm
				b.Fatal(err)
			}
			b.ResetTimer()
			var matched int
			for i := 0; i < b.N; i++ {
				ids, err := s.MatchBytes(doc)
				if err != nil {
					b.Fatal(err)
				}
				matched = len(ids)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
			b.ReportMetric(float64(matched), "matched")
		})
		b.Run(fmt.Sprintf("subs=%d/sharded", n), func(b *testing.B) {
			s := streamxpath.NewParallelFilterSet(0) // shards = GOMAXPROCS
			defer s.Close()
			for i, src := range subs {
				if err := s.Add(fmt.Sprintf("s%d", i), src); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.MatchBytes(doc); err != nil { // compile + warm
				b.Fatal(err)
			}
			b.ResetTimer()
			var matched int
			for i := 0; i < b.N; i++ {
				ids, err := s.MatchBytes(doc)
				if err != nil {
					b.Fatal(err)
				}
				matched = len(ids)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
			b.ReportMetric(float64(matched), "matched")
		})
		b.Run(fmt.Sprintf("subs=%d/pool", n), func(b *testing.B) {
			p := streamxpath.NewFilterPool(0) // replicas = GOMAXPROCS
			for i, src := range subs {
				if err := p.Add(fmt.Sprintf("s%d", i), src); err != nil {
					b.Fatal(err)
				}
			}
			// Warm every replica: the idle ring is FIFO, so Workers()
			// sequential calls visit each replica exactly once.
			for w := 0; w < p.Workers(); w++ {
				if _, err := p.MatchBytes(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := p.MatchBytes(doc); err != nil {
						// FailNow must not run on a RunParallel worker
						// goroutine; Error marks the failure and we drain.
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
		})
	}
}
