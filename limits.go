package streamxpath

import (
	"errors"

	"streamxpath/internal/engine"
	"streamxpath/internal/limits"
	"streamxpath/internal/parallel"
)

// LimitPolicy selects what a Match call does when a resource budget is
// breached mid-document.
type LimitPolicy uint8

const (
	// LimitFail (the default) fails the document: the Match call returns
	// a *LimitError (detect with errors.As) and no verdicts. The set or
	// filter stays fully usable for the next document.
	LimitFail LimitPolicy = iota
	// LimitAbstain degrades gracefully: the Match call returns the
	// verdicts that were already decided when the budget was hit — they
	// are definitive, because matching is monotone — with a nil error,
	// and abstains on the rest. Abstained() (and ReaderStats.Abstained
	// for reader calls) report the degradation, so "matched" and "ran out
	// of budget while unmatched" remain distinguishable.
	LimitAbstain
)

// Limits is a per-document resource budget — the operational form of the
// paper's memory lower bounds. A field <= 0 leaves that budget
// unenforced; the zero value disables everything, keeping unlimited
// matching on the allocation-free fast path (every check is one compare).
//
// The paper proves any streaming evaluator needs Ω(frontier size)
// concurrent candidate state, Ω(r) state under recursion, and Ω(log d)
// bits at depth d. A document that drives live state past a budget is
// therefore one no streaming evaluator could handle in that budget — so
// the principled response is a typed, recoverable refusal (or an abstain
// verdict), never unbounded growth and never a panic.
type Limits struct {
	// MaxDepth bounds the open-element nesting depth (the paper's d, and
	// its recursion term r on recursive documents). A 10^6-deep
	// element chain is refused at depth MaxDepth+1, not parsed to
	// completion.
	MaxDepth int
	// MaxTokenBytes bounds a single token: text run, CDATA section,
	// comment, processing instruction, or attribute value — and, on the
	// streaming paths, the retained unconsumed tail. This is the budget
	// that stops a gigabyte text node (or a tag with 10^4 attributes)
	// from buffering whole.
	MaxTokenBytes int
	// MaxBufferedBytes bounds the candidate-text buffer (the paper's
	// text-width term w): bytes held for value-restricted predicate
	// leaves awaiting truth-set evaluation.
	MaxBufferedBytes int
	// MaxLiveTuples bounds the live matching state: frontier tuples plus
	// open candidate scopes plus buffering leaf candidates (the paper's
	// FS(Q), times recursion on recursive documents). Dead-but-unremoved
	// tuples are evicted before a breach is declared, so the budget
	// measures state that could still influence a verdict.
	MaxLiveTuples int
	// MaxDocBytes bounds the total document size: bytes consumed from a
	// reader, or the slice length on the in-memory paths.
	MaxDocBytes int64
	// Policy selects failure (LimitFail, the default) or graceful
	// degradation (LimitAbstain) on a breach.
	Policy LimitPolicy
}

// Enabled reports whether any budget is set.
func (l Limits) Enabled() bool { return l.internal().Enabled() }

// internal strips the policy, leaving the enforcement thresholds the
// internal layers understand.
func (l Limits) internal() limits.Limits {
	return limits.Limits{
		MaxDepth:         l.MaxDepth,
		MaxTokenBytes:    l.MaxTokenBytes,
		MaxBufferedBytes: l.MaxBufferedBytes,
		MaxLiveTuples:    l.MaxLiveTuples,
		MaxDocBytes:      l.MaxDocBytes,
	}
}

// LimitError reports a resource-budget breach: which budget (Resource),
// its configured value (Limit), and the observed value that crossed it
// (Observed). Every enforcement site returns it — never panics — and the
// breaching filter or set is reusable for the next document. Detect with
// errors.As; under LimitAbstain it is converted into a degraded verdict
// instead of surfacing.
type LimitError = limits.Error

// PanicError reports a panic recovered inside a parallel worker (a
// ParallelFilterSet shard or a FilterPool replica). Only the in-flight
// document fails — the error carries the recovered value and stack — and
// the faulty worker's engine is quarantined and rebuilt from its intact
// subscription list before the next document. Detect with errors.As.
type PanicError = parallel.PanicError

// MemStats is the live-memory accounting of the last document, with the
// paper's cost model and lower bound applied: component peaks of the
// matching state, the bits they correspond to under the Theorem 8.8 cost
// model (EstimatedBits), the paper's floor for the same document shape
// (LowerBoundBits), and their ratio — how far above the
// information-theoretic minimum the evaluator actually sat.
type MemStats = engine.MemStats

// limitBreach reports whether err carries a *LimitError.
func limitBreach(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}
