package streamxpath

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"streamxpath/internal/sax"
	"streamxpath/internal/workload"
)

// randomDissemDoc builds a random catalog document exercising elements,
// attributes, text predicates and entity-bearing text.
func randomDissemDoc(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 1+rng.Intn(6); j++ {
		fmt.Fprintf(&b, `<item id="%d"><priority>%d</priority>`, rng.Intn(5), rng.Intn(10))
		for k := 0; k < rng.Intn(4); k++ {
			fmt.Fprintf(&b, "<f%d>v%d</f%d>", k, rng.Intn(4), k)
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "<note>a &amp; b %d</note>", rng.Intn(3))
		}
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return b.String()
}

// TestMatchBytesEquivalenceRandomized proves the interned byte-slice
// path produces match results identical to the legacy string path, for
// both FilterSet and the standalone Filter, across randomized
// subscription sets and documents — the differential acceptance test of
// this PR's refactor.
func TestMatchBytesEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1712))
	templates := []func() string{
		func() string { return fmt.Sprintf("//catalog/item/f%d", rng.Intn(6)) },
		func() string { return fmt.Sprintf("/catalog//item[priority > %d]", rng.Intn(8)) },
		func() string { return fmt.Sprintf(`//item[f%d = "v%d"]`, rng.Intn(4), rng.Intn(4)) },
		func() string {
			return fmt.Sprintf("//item[f%d and priority < %d]/f%d", rng.Intn(4), rng.Intn(8), rng.Intn(4))
		},
		func() string { return "//*[priority]" },
		func() string { return fmt.Sprintf(`//item[@id = "%d"]`, rng.Intn(5)) },
		func() string { return fmt.Sprintf(`//item[contains(note, "b %d")]`, rng.Intn(3)) },
		func() string { return "//catalog/*/f1" },
	}
	for trial := 0; trial < 60; trial++ {
		s := NewFilterSet()
		srcs := map[string]string{}
		for i := 0; i < 2+rng.Intn(8); i++ {
			id := fmt.Sprintf("s%d", i)
			srcs[id] = templates[rng.Intn(len(templates))]()
			if err := s.Add(id, srcs[id]); err != nil {
				t.Fatal(err)
			}
		}
		// Several documents per set: MatchBytes must stay correct across
		// Reset/reuse, interleaved with the string path.
		for d := 0; d < 4; d++ {
			doc := randomDissemDoc(rng)
			viaBytes, err := s.MatchBytes([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			gotBytes := strings.Join(viaBytes, ",")
			viaString, err := s.MatchString(doc)
			if err != nil {
				t.Fatal(err)
			}
			if gotBytes != strings.Join(viaString, ",") {
				t.Fatalf("trial %d doc %d: MatchBytes=%v MatchString=%v\ndoc: %s\nsubs: %v",
					trial, d, gotBytes, viaString, doc, srcs)
			}
			for id, src := range srcs {
				f, err := MustCompile(src).NewFilter()
				if err != nil {
					t.Fatal(err)
				}
				fb, err := f.MatchBytes([]byte(doc))
				if err != nil {
					t.Fatal(err)
				}
				fs, err := f.MatchString(doc)
				if err != nil {
					t.Fatal(err)
				}
				if fb != fs {
					t.Fatalf("trial %d: %s (%s): Filter.MatchBytes=%v MatchString=%v\ndoc: %s",
						trial, id, src, fb, fs, doc)
				}
				inSet := false
				for _, got := range viaBytes {
					if got == id {
						inSet = true
					}
				}
				if inSet != fb {
					t.Fatalf("trial %d: %s (%s): set=%v standalone=%v\ndoc: %s",
						trial, id, src, inSet, fb, doc)
				}
			}
		}
	}
}

// TestMatchBytesRandomTrees runs the byte path against serialized random
// trees with the randomized query generator, cross-checking the string
// path on the same filter instance.
func TestMatchBytesRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	names := []string{"a", "b", "c"}
	texts := []string{"v", "5", "12", ""}
	for trial := 0; trial < 80; trial++ {
		q := workload.RandomRedundancyFreeQuery(rng, 2+rng.Intn(6))
		pub, err := Compile(q.String())
		if err != nil {
			t.Fatalf("reparse of generated query %s: %v", q, err)
		}
		f, err := pub.NewFilter()
		if err != nil {
			continue // outside the streamable fragment
		}
		d := workload.RandomTree(rng, names, texts, 5, 3)
		doc, err := sax.SerializeString(d.Events())
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.MatchString(doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.MatchBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: query %s doc %s: bytes=%v string=%v", trial, q, doc, got, want)
		}
	}
}

// TestFilterSetMatchBytesZeroAlloc is the acceptance criterion of the
// interned-symbol pipeline: steady-state matching of a predicate-free
// (linear) subscription set through FilterSet.MatchBytes performs zero
// allocations — per event and per document.
func TestFilterSetMatchBytesZeroAlloc(t *testing.T) {
	s := NewFilterSet()
	for i := 0; i < 200; i++ {
		if err := s.Add(fmt.Sprintf("s%d", i), fmt.Sprintf("//catalog/item/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 40; j++ {
		fmt.Fprintf(&b, "<item><priority>%d</priority><f%d/><f%d/></item>", j%12, j, j+40)
	}
	b.WriteString("</catalog>")
	doc := []byte(b.String())

	// Warm up: compile the shared index, materialize the lazy DFA rows,
	// grow every scratch buffer.
	for i := 0; i < 3; i++ {
		ids, err := s.MatchBytes(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 80 {
			t.Fatalf("matched %d subscriptions, want 80", len(ids))
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.MatchBytes(doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state linear MatchBytes: %v allocs/run, want 0", allocs)
	}
}

// TestFilterMatchBytesSteadyStateAllocs: the standalone Filter's byte
// path must also be allocation-free once warm on a predicate-free query.
func TestFilterMatchBytesSteadyStateAllocs(t *testing.T) {
	f, err := MustCompile("//catalog/item/f3").NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("<catalog><item><f1/><f2/></item><item><f3>v</f3></item><item><f4/></item></catalog>")
	for i := 0; i < 3; i++ {
		ok, err := f.MatchBytes(doc)
		if err != nil || !ok {
			t.Fatalf("MatchBytes = %v, %v; want true", ok, err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := f.MatchBytes(doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Filter.MatchBytes: %v allocs/run, want 0", allocs)
	}
}

// TestFilterSetRecoversFromMalformedDoc: a document that fails
// mid-stream (never reaching endDocument) must not wedge the engine —
// the next Match call starts fresh, on both the byte and reader paths.
func TestFilterSetRecoversFromMalformedDoc(t *testing.T) {
	s := NewFilterSet()
	if err := s.Add("a", "//item"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MatchBytes([]byte("<news><item>")); err == nil {
		t.Fatal("malformed document should error")
	}
	got, err := s.MatchBytes([]byte("<news><item/></news>"))
	if err != nil {
		t.Fatalf("MatchBytes after malformed doc: %v", err)
	}
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("MatchBytes after malformed doc = %v, want [a]", got)
	}
	if _, err := s.MatchString("<news><item>"); err == nil {
		t.Fatal("malformed document should error")
	}
	viaReader, err := s.MatchString("<news><item/></news>")
	if err != nil {
		t.Fatalf("MatchString after malformed doc: %v", err)
	}
	if len(viaReader) != 1 || viaReader[0] != "a" {
		t.Fatalf("MatchString after malformed doc = %v, want [a]", viaReader)
	}
}

// TestMatchBytesResultReuse documents the MatchBytes contract: the
// returned slice is reused by the next call.
func TestMatchBytesResultReuse(t *testing.T) {
	s := NewFilterSet()
	if err := s.Add("a", "//a"); err != nil {
		t.Fatal(err)
	}
	got, err := s.MatchBytes([]byte("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("MatchBytes = %v, want [a]", got)
	}
	empty, err := s.MatchBytes([]byte("<b/>"))
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("no matches: MatchBytes = %#v, want empty non-nil slice", empty)
	}
}
