package streamxpath

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// segmentReader yields a document as predetermined segments, one per
// Read call — the instrument for placing chunk boundaries exactly.
type segmentReader struct {
	segs [][]byte
	i    int
}

func (r *segmentReader) Read(p []byte) (int, error) {
	for r.i < len(r.segs) && len(r.segs[r.i]) == 0 {
		r.i++
	}
	if r.i >= len(r.segs) {
		return 0, io.EOF
	}
	n := copy(p, r.segs[r.i])
	if n == len(r.segs[r.i]) {
		r.i++
	} else {
		r.segs[r.i] = r.segs[r.i][n:]
	}
	return n, nil
}

// countingReader counts the bytes handed out, to observe early exit.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// TestFilterSetMatchReaderSplitEveryOffset is the reader-level
// chunk-boundary differential: for each corpus document, MatchReader
// over the document split into two reads at every byte offset must
// produce the same verdict set (and the same error-ness) as whole-buffer
// MatchBytes.
func TestFilterSetMatchReaderSplitEveryOffset(t *testing.T) {
	s := NewFilterSet()
	for id, q := range map[string]string{
		"items":  `//catalog/item`,
		"pri":    `/catalog//item[priority > 5]`,
		"note":   `//item[contains(note, "b")]`,
		"attr":   `//item[@id = "3"]`,
		"wild":   `//*[priority]`,
		"nested": `//item[f1 and priority < 9]/f1`,
	} {
		if err := s.Add(id, q); err != nil {
			t.Fatal(err)
		}
	}
	docs := []string{
		`<catalog><item id="3"><priority>7</priority><f1>v</f1><note>a &amp; b</note></item></catalog>`,
		`<catalog><item><priority>2</priority></item><item id="1"><f1/></item></catalog>`,
		`<catalog><!-- c --><item><![CDATA[x<y]]><priority>9</priority></item></catalog>`,
		`<other><thing/></other>`,
		// Malformed: errors must surface identically at any split.
		`<catalog><item>`,
		`<catalog><item></wrong></catalog>`,
	}
	for _, doc := range docs {
		want, wantErr := s.MatchBytes([]byte(doc))
		wantIDs := strings.Join(want, ",")
		for off := 0; off <= len(doc); off++ {
			r := &segmentReader{segs: [][]byte{[]byte(doc[:off]), []byte(doc[off:])}}
			got, gotErr := s.MatchReader(r)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("doc %q split %d: MatchBytes err=%v MatchReader err=%v", doc, off, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if strings.Join(got, ",") != wantIDs {
				t.Fatalf("doc %q split %d: MatchReader=%v MatchBytes=%v", doc, off, got, want)
			}
		}
	}
}

// TestMatchReaderRandomChunksEquivalence cross-checks MatchReader (at
// random chunk sizes and random multi-way splits) against MatchBytes for
// FilterSet, ParallelFilterSet and the standalone Filter on randomized
// dissemination documents.
func TestMatchReaderRandomChunksEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	s := NewFilterSet()
	par := NewParallelFilterSet(3)
	defer par.Close()
	subs := map[string]string{
		"f2":   "//catalog/item/f2",
		"pri":  "/catalog//item[priority > 4]",
		"note": `//item[contains(note, "b 1")]`,
		"id":   `//item[@id = "2"]`,
	}
	for id, q := range subs {
		if err := s.Add(id, q); err != nil {
			t.Fatal(err)
		}
		if err := par.Add(id, q); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		doc := randomDissemDoc(rng)
		want, err := s.MatchBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := strings.Join(want, ",")

		chunk := 1 + rng.Intn(64)
		s.SetChunkSize(chunk)
		got, err := s.MatchReader(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("trial %d chunk %d: %v", trial, chunk, err)
		}
		if strings.Join(got, ",") != wantIDs {
			t.Fatalf("trial %d chunk %d: MatchReader=%v want %v\ndoc: %s", trial, chunk, got, want, doc)
		}

		// Random multi-way split through a segment reader.
		var segs [][]byte
		prev := 0
		for prev < len(doc) {
			n := 1 + rng.Intn(len(doc)-prev)
			segs = append(segs, []byte(doc[prev:prev+n]))
			prev += n
		}
		par.SetChunkSize(1 + rng.Intn(64))
		gotPar, err := par.MatchReader(&segmentReader{segs: segs})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if strings.Join(gotPar, ",") != wantIDs {
			t.Fatalf("trial %d: ParallelFilterSet.MatchReader=%v want %v\ndoc: %s", trial, gotPar, want, doc)
		}

		for id, q := range subs {
			f, err := MustCompile(q).NewFilter()
			if err != nil {
				t.Fatal(err)
			}
			f.SetChunkSize(1 + rng.Intn(32))
			ok, err := f.MatchReader(strings.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			inSet := false
			for _, g := range want {
				if g == id {
					inSet = true
				}
			}
			if ok != inSet {
				t.Fatalf("trial %d: %s: Filter.MatchReader=%v set=%v\ndoc: %s", trial, id, ok, inSet, doc)
			}
		}
	}
	s.SetChunkSize(0)
}

// TestFilterSetMatchReaderZeroAlloc mirrors TestFilterSetMatchBytesZeroAlloc
// for the chunked reader path — the acceptance criterion of this PR:
// steady-state linear matching from a reader performs zero allocations,
// per event and per chunk (the tail buffer, batch scratch and result
// buffer all persist).
func TestFilterSetMatchReaderZeroAlloc(t *testing.T) {
	s := NewFilterSet()
	for i := 0; i < 200; i++ {
		if err := s.Add(fmt.Sprintf("s%d", i), fmt.Sprintf("//catalog/item/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 40; j++ {
		fmt.Fprintf(&b, "<item><priority>%d</priority><f%d/><f%d/></item>", j%12, j, j+40)
	}
	b.WriteString("</catalog>")
	doc := []byte(b.String())
	s.SetChunkSize(512) // many chunks per document
	r := bytes.NewReader(doc)

	for i := 0; i < 3; i++ { // warm: shared index, DFA rows, tail buffer
		r.Reset(doc)
		ids, err := s.MatchReader(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 80 {
			t.Fatalf("matched %d subscriptions, want 80", len(ids))
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(doc)
		if _, err := s.MatchReader(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state linear MatchReader: %v allocs/run, want 0", allocs)
	}
}

// TestFilterSetMatchReaderEarlyExit: a prefix-decidable subscription set
// must stop consuming the reader long before EOF, report the early exit,
// and leave the set reusable.
func TestFilterSetMatchReaderEarlyExit(t *testing.T) {
	s := NewFilterSet()
	if err := s.Add("cat", "//catalog"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("first", `//item[@id = "0"]`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`<catalog><item id="0"><f/></item>`)
	for j := 1; j < 5000; j++ {
		fmt.Fprintf(&b, `<item id="%d"><f/></item>`, j)
	}
	b.WriteString("</catalog>")
	doc := b.String()
	s.SetChunkSize(1024)

	cr := &countingReader{r: strings.NewReader(doc)}
	ids, err := s.MatchReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "cat" || ids[1] != "first" {
		t.Fatalf("MatchReader = %v, want [cat first]", ids)
	}
	rs := s.ReaderStats()
	if !rs.EarlyExit {
		t.Fatal("expected EarlyExit")
	}
	if cr.n >= int64(len(doc)) {
		t.Fatalf("read %d of %d bytes; expected early stop", cr.n, len(doc))
	}
	if rs.BytesRead != cr.n {
		t.Fatalf("ReaderStats.BytesRead = %d, reader counted %d", rs.BytesRead, cr.n)
	}
	if rs.BytesConsumed <= 0 || rs.BytesConsumed > rs.BytesRead {
		t.Fatalf("BytesConsumed = %d out of range (read %d)", rs.BytesConsumed, rs.BytesRead)
	}

	// A doc that never decides reads to EOF and reports no early exit.
	if _, err := s.MatchReader(strings.NewReader("<other/>")); err != nil {
		t.Fatal(err)
	}
	if rs := s.ReaderStats(); rs.EarlyExit {
		t.Fatal("undecidable document must not early-exit")
	}
}

// TestFilterMatchReaderEarlyExit: the standalone filter stops reading
// once its (monotone) match is inevitable.
func TestFilterMatchReaderEarlyExit(t *testing.T) {
	f, err := MustCompile("//item[priority > 5]").NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<catalog><item><priority>9</priority></item>")
	for j := 0; j < 5000; j++ {
		b.WriteString("<item><priority>1</priority></item>")
	}
	b.WriteString("</catalog>")
	doc := b.String()
	f.SetChunkSize(1024)
	cr := &countingReader{r: strings.NewReader(doc)}
	ok, err := f.MatchReader(cr)
	if err != nil || !ok {
		t.Fatalf("MatchReader = %v, %v; want true", ok, err)
	}
	rs := f.ReaderStats()
	if !rs.EarlyExit || cr.n >= int64(len(doc)) {
		t.Fatalf("expected early exit; read %d of %d (stats %+v)", cr.n, len(doc), rs)
	}
	// The filter remains reusable and still reads whole documents when
	// the verdict needs them.
	ok, err = f.MatchReader(strings.NewReader("<catalog><item><priority>2</priority></item></catalog>"))
	if err != nil || ok {
		t.Fatalf("second MatchReader = %v, %v; want false", ok, err)
	}
	if f.ReaderStats().EarlyExit {
		t.Fatal("non-matching document must not early-exit")
	}
}

// TestParallelFilterSetMatchReaderEarlyExit: the sharded streaming path
// abandons the reader once every shard's verdicts are decided.
func TestParallelFilterSetMatchReaderEarlyExit(t *testing.T) {
	par := NewParallelFilterSet(4)
	defer par.Close()
	for i := 0; i < 8; i++ {
		if err := par.Add(fmt.Sprintf("s%d", i), "//catalog"); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 20000; j++ {
		fmt.Fprintf(&b, "<item><f%d/></item>", j%7)
	}
	b.WriteString("</catalog>")
	doc := b.String()
	par.SetChunkSize(2048)
	cr := &countingReader{r: strings.NewReader(doc)}
	ids, err := par.MatchReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("matched %d, want 8", len(ids))
	}
	rs := par.ReaderStats()
	if !rs.EarlyExit || cr.n >= int64(len(doc)) {
		t.Fatalf("expected early exit; read %d of %d (stats %+v)", cr.n, len(doc), rs)
	}
	// And the set still matches complete documents afterwards.
	ids, err = par.MatchReader(strings.NewReader("<catalog><x/></catalog>"))
	if err != nil || len(ids) != 8 {
		t.Fatalf("after early exit: %v, %v", ids, err)
	}
}

// TestAdaptiveFilterSet: the adaptive engine routes small documents to
// the pool, large ones to the sharded engine, with results identical to
// the sequential FilterSet on both routes and both entry points.
func TestAdaptiveFilterSet(t *testing.T) {
	seq := NewFilterSet()
	ad := NewAdaptiveFilterSet(3)
	defer ad.Close()
	subs := map[string]string{
		"f1":  "//catalog/item/f1",
		"pri": "/catalog//item[priority > 3]",
		"x":   "//x",
	}
	for id, q := range subs {
		if err := seq.Add(id, q); err != nil {
			t.Fatal(err)
		}
		if err := ad.Add(id, q); err != nil {
			t.Fatal(err)
		}
	}
	small := `<catalog><item><priority>5</priority><f1/></item></catalog>`
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 4000; j++ {
		fmt.Fprintf(&b, "<item><priority>%d</priority><f1/></item>", j%8)
	}
	b.WriteString("</catalog>")
	large := b.String()

	for _, tc := range []struct {
		name, doc, mode string
	}{
		{"small", small, "pool"},
		{"large", large, "shard"},
	} {
		want, err := seq.MatchBytes([]byte(tc.doc))
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := strings.Join(want, ",")
		got, err := ad.MatchBytes([]byte(tc.doc))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != wantIDs {
			t.Fatalf("%s: MatchBytes=%v want %v", tc.name, got, want)
		}
		// The subscription set (3) is below AutoMinSubs, so both entry
		// points route every document — small or large — to the pool:
		// small ones via the staged byte path, large ones via sequential
		// replica streaming (no fan-out for thin shards).
		gotR, err := ad.MatchReader(strings.NewReader(tc.doc))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(gotR, ",") != wantIDs {
			t.Fatalf("%s: MatchReader=%v want %v", tc.name, gotR, want)
		}
		if ad.LastMode() != "pool" {
			t.Fatalf("%s doc with 3 subs routed to %q, want pool", tc.name, ad.LastMode())
		}
	}

	// Above both thresholds — a dense subscription set and a large
	// document — the adaptive engine fans out event-sharded.
	seqDense := NewFilterSet()
	dense := NewAdaptiveFilterSet(3)
	defer dense.Close()
	for i := 0; i < 300; i++ {
		q := fmt.Sprintf("//catalog/item/f%d", i%5)
		if err := seqDense.Add(fmt.Sprintf("d%d", i), q); err != nil {
			t.Fatal(err)
		}
		if err := dense.Add(fmt.Sprintf("d%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	want, err := seqDense.MatchBytes([]byte(large))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dense.MatchReader(strings.NewReader(large))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dense large: MatchReader=%v want %v", got, want)
	}
	if dense.LastMode() != "shard" {
		t.Fatalf("dense large doc routed to %q, want shard", dense.LastMode())
	}
	if ids, err := dense.MatchBytes([]byte(small)); err != nil || dense.LastMode() != "pool" {
		t.Fatalf("dense small doc: %v, %v, mode %q (want pool)", ids, err, dense.LastMode())
	}
}

// TestStreamEvaluatorReaderChunked: full evaluation over the chunked
// reader path must agree with the in-memory evaluator at any chunk size.
func TestStreamEvaluatorReaderChunked(t *testing.T) {
	q := MustCompile("/catalog/item[priority > 4]/name")
	ev, err := q.NewStreamEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	doc := `<catalog><item><priority>7</priority><name>go &amp; xml</name></item>` +
		`<item><priority>2</priority><name>skip</name></item>` +
		`<item><priority>9</priority><name>keep</name></item></catalog>`
	want, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 5, 33, 1 << 16} {
		ev.SetChunkSize(chunk)
		got, err := ev.EvaluateReader(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("chunk %d: %v, want %v", chunk, got, want)
		}
	}
}
