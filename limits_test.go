package streamxpath

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// deepDoc builds <a> nested to the given depth around a single text
// byte — the adversarial document class behind the paper's Ω(log d)
// depth lower bound, scaled past any sane frontier budget.
func deepDoc(depth int) []byte {
	var b bytes.Buffer
	b.Grow(7*depth + 1)
	b.WriteString(strings.Repeat("<a>", depth))
	b.WriteByte('x')
	b.WriteString(strings.Repeat("</a>", depth))
	return b.Bytes()
}

var (
	deepMegaOnce sync.Once
	deepMegaDoc  []byte
)

// deepMega returns the 1M-element-deep document (built once; ~7MB).
func deepMega() []byte {
	deepMegaOnce.Do(func() { deepMegaDoc = deepDoc(1 << 20) })
	return deepMegaDoc
}

func wantLimitError(t *testing.T, err error, resource string) {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error = %v, want wrapped *LimitError", err)
	}
	if resource != "" && le.Resource != resource {
		t.Fatalf("LimitError resource = %q (%v), want %q", le.Resource, le, resource)
	}
}

// TestLimitsDeepDocEveryEntryPoint is the acceptance scenario: a
// 1M-element-deep document under MaxDepth/MaxLiveTuples terminates
// early on every entry point — a typed *LimitError under LimitFail, an
// abstain verdict under LimitAbstain — with peak accounted memory
// bounded by the budget, and the object reusable afterwards.
func TestLimitsDeepDocEveryEntryPoint(t *testing.T) {
	doc := deepMega()
	okDoc := "<a><b>x</b></a>"
	lim := Limits{MaxDepth: 1000, MaxLiveTuples: 4096}

	// checkStats: the peaks must scale with the budget, not the document.
	checkStats := func(t *testing.T, ms MemStats, shards int) {
		t.Helper()
		if ms.MaxDepth > lim.MaxDepth+2 {
			t.Errorf("MemStats.MaxDepth = %d, want <= %d", ms.MaxDepth, lim.MaxDepth+2)
		}
		if ms.PeakLiveTuples > shards*2*lim.MaxLiveTuples {
			t.Errorf("MemStats.PeakLiveTuples = %d, want O(%d)", ms.PeakLiveTuples, lim.MaxLiveTuples)
		}
	}

	for _, pol := range []LimitPolicy{LimitFail, LimitAbstain} {
		pol := pol
		name := map[LimitPolicy]string{LimitFail: "Fail", LimitAbstain: "Abstain"}[pol]
		lim := lim
		lim.Policy = pol

		checkSetErr := func(t *testing.T, ids []string, err error, abst bool) {
			t.Helper()
			if pol == LimitFail {
				wantLimitError(t, err, "")
				return
			}
			if err != nil {
				t.Fatalf("abstain policy returned error: %v", err)
			}
			if ids == nil {
				t.Fatal("abstain policy returned nil ids")
			}
			if len(ids) != 0 {
				t.Fatalf("abstained ids = %v, want none decided", ids)
			}
			if !abst {
				t.Fatal("Abstained() = false after budget breach")
			}
		}

		t.Run("FilterSet/"+name, func(t *testing.T) {
			s := NewFilterSet()
			if err := s.Add("q", "//a/b"); err != nil {
				t.Fatal(err)
			}
			s.SetLimits(lim)
			ids, err := s.MatchBytes(doc)
			checkSetErr(t, ids, err, s.Abstained())
			checkStats(t, s.MemStats(), 1)
			ids, err = s.MatchReader(bytes.NewReader(doc))
			checkSetErr(t, ids, err, s.Abstained())
			if pol == LimitAbstain && !s.ReaderStats().Abstained {
				t.Fatal("ReaderStats().Abstained = false after breach")
			}
			ids, err = s.MatchString(okDoc)
			if err != nil || len(ids) != 1 || s.Abstained() {
				t.Fatalf("reuse: ids=%v err=%v abstained=%v", ids, err, s.Abstained())
			}
		})
		t.Run("Filter/"+name, func(t *testing.T) {
			f, err := MustCompile("//a/b").NewFilter()
			if err != nil {
				t.Fatal(err)
			}
			f.SetLimits(lim)
			ok, err := f.MatchBytes(doc)
			if pol == LimitFail {
				wantLimitError(t, err, "")
			} else if err != nil || ok || !f.Abstained() {
				t.Fatalf("abstain: ok=%v err=%v abstained=%v", ok, err, f.Abstained())
			}
			ok, err = f.MatchReader(bytes.NewReader(doc))
			if pol == LimitFail {
				wantLimitError(t, err, "")
			} else if err != nil || ok || !f.Abstained() {
				t.Fatalf("abstain reader: ok=%v err=%v abstained=%v", ok, err, f.Abstained())
			}
			ok, err = f.MatchString(okDoc)
			if err != nil || !ok || f.Abstained() {
				t.Fatalf("reuse: ok=%v err=%v abstained=%v", ok, err, f.Abstained())
			}
		})
		t.Run("ParallelFilterSet/"+name, func(t *testing.T) {
			s := NewParallelFilterSet(2)
			defer s.Close()
			if err := s.Add("q", "//a/b"); err != nil {
				t.Fatal(err)
			}
			s.SetLimits(lim)
			ids, err := s.MatchBytes(doc)
			checkSetErr(t, ids, err, s.Abstained())
			checkStats(t, s.MemStats(), s.Shards())
			ids, err = s.MatchReader(bytes.NewReader(doc))
			checkSetErr(t, ids, err, s.Abstained())
			ids, err = s.MatchString(okDoc)
			if err != nil || len(ids) != 1 || s.Abstained() {
				t.Fatalf("reuse: ids=%v err=%v abstained=%v", ids, err, s.Abstained())
			}
		})
		t.Run("FilterPool/"+name, func(t *testing.T) {
			p := NewFilterPool(2)
			if err := p.Add("q", "//a/b"); err != nil {
				t.Fatal(err)
			}
			p.SetLimits(lim)
			ids, err := p.MatchBytes(doc)
			checkSetErr(t, ids, err, p.Abstained())
			checkStats(t, p.MemStats(), 1)
			ids, err = p.MatchReader(bytes.NewReader(doc))
			checkSetErr(t, ids, err, p.Abstained())
			ids, err = p.MatchString(okDoc)
			if err != nil || len(ids) != 1 || p.Abstained() {
				t.Fatalf("reuse: ids=%v err=%v abstained=%v", ids, err, p.Abstained())
			}
		})
		t.Run("AdaptiveFilterSet/"+name, func(t *testing.T) {
			s := NewAdaptiveFilterSet(2)
			defer s.Close()
			if err := s.Add("q", "//a/b"); err != nil {
				t.Fatal(err)
			}
			s.SetLimits(lim)
			ids, err := s.MatchBytes(doc)
			checkSetErr(t, ids, err, s.Abstained())
			checkStats(t, s.MemStats(), s.Shards())
			ids, err = s.MatchReader(bytes.NewReader(doc))
			checkSetErr(t, ids, err, s.Abstained())
			ids, err = s.MatchString(okDoc)
			if err != nil || len(ids) != 1 || s.Abstained() {
				t.Fatalf("reuse: ids=%v err=%v abstained=%v", ids, err, s.Abstained())
			}
		})
	}
}

// TestLimitsLiveTuplesOnly: with only the frontier budget set, the deep
// document trips the live-tuples accounting (scopes grow with depth for
// a descendant query) rather than running the heap out.
func TestLimitsLiveTuplesOnly(t *testing.T) {
	doc := deepDoc(1 << 16)
	s := NewFilterSet()
	if err := s.Add("q", "//a/b"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxLiveTuples: 2048})
	_, err := s.MatchBytes(doc)
	wantLimitError(t, err, "live-tuples")

	f, err := MustCompile("//a/b").NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	f.SetLimits(Limits{MaxLiveTuples: 2048})
	_, err = f.MatchBytes(doc)
	wantLimitError(t, err, "live-tuples")
}

// TestLimitsGiantTextNode: a single huge text node trips MaxTokenBytes
// on both the in-memory and streaming tokenizers; without the budget
// the document still matches.
func TestLimitsGiantTextNode(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("<catalog><item><name>")
	b.WriteString(strings.Repeat("x", 8<<20))
	b.WriteString("</name></item></catalog>")
	doc := b.Bytes()

	free := NewFilterSet()
	if err := free.Add("q", "/catalog/item/name"); err != nil {
		t.Fatal(err)
	}
	ids, err := free.MatchBytes(doc)
	if err != nil || len(ids) != 1 {
		t.Fatalf("unlimited: ids=%v err=%v", ids, err)
	}
	// The budgeted set uses an undecidable query — a query that decides
	// early stops scanning before the giant text, which is the desired
	// behavior but not what this test exercises.
	s := NewFilterSet()
	if err := s.Add("q", "/catalog/item/missing"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxTokenBytes: 64 << 10})
	_, err = s.MatchBytes(doc)
	wantLimitError(t, err, "token-bytes")
	_, err = s.MatchReader(bytes.NewReader(doc))
	wantLimitError(t, err, "token-bytes")
}

// TestLimitsBufferedText: a value predicate buffers its leaf's text, so
// a giant text node inside the compared element trips MaxBufferedBytes
// even when MaxTokenBytes allows the token itself.
func TestLimitsBufferedText(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("<catalog><item><name>")
	b.WriteString(strings.Repeat("x", 1<<20))
	b.WriteString("</name></item></catalog>")
	doc := b.Bytes()

	s := NewFilterSet()
	if err := s.Add("q", "//item[name = 'xyz']"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxBufferedBytes: 4 << 10})
	_, err := s.MatchBytes(doc)
	wantLimitError(t, err, "buffered-bytes")

	f, err := MustCompile("//item[name = 'xyz']").NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	f.SetLimits(Limits{MaxBufferedBytes: 4 << 10})
	_, err = f.MatchBytes(doc)
	wantLimitError(t, err, "buffered-bytes")
}

// manyAttrDoc builds a tag carrying n attributes.
func manyAttrDoc(n int) []byte {
	var b bytes.Buffer
	b.WriteString("<catalog><item")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " k%d=\"v%d\"", i, i)
	}
	b.WriteString("/></catalog>")
	return b.Bytes()
}

// TestLimitsManyAttributes: a 10k-attribute tag is a giant token — it
// trips MaxTokenBytes when budgeted, and matches identically to the
// unlimited engine under a generous budget.
func TestLimitsManyAttributes(t *testing.T) {
	doc := manyAttrDoc(10_000)
	query := "/catalog/item[@k9999 = 'v9999']"

	free := NewFilterSet()
	if err := free.Add("q", query); err != nil {
		t.Fatal(err)
	}
	want, err := free.MatchBytes(doc)
	if err != nil || len(want) != 1 {
		t.Fatalf("unlimited: ids=%v err=%v", want, err)
	}

	s := NewFilterSet()
	if err := s.Add("q", query); err != nil {
		t.Fatal(err)
	}
	// The in-memory tokenizer scans attributes in place, so the memory
	// cost of a giant tag is only real on the streaming path, where the
	// unfinished tag must be carried across chunk boundaries — that is
	// where the token budget applies.
	s.SetLimits(Limits{MaxTokenBytes: 4 << 10})
	s.SetChunkSize(512)
	_, err = s.MatchReader(bytes.NewReader(doc))
	wantLimitError(t, err, "token-bytes")

	s.SetLimits(Limits{MaxTokenBytes: 1 << 20, MaxDepth: 100, MaxLiveTuples: 1 << 20})
	got, err := s.MatchBytes(doc)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("generous limits: ids=%v err=%v, want %v", got, err, want)
	}
}

// TestLimitsPredicateNesting: pathologically nested predicates over a
// wide document grow pendings/scopes; the live-tuples budget cuts the
// evaluation off, and a generous budget reproduces the unlimited
// verdict byte-for-byte.
func TestLimitsPredicateNesting(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("<r>")
	for i := 0; i < 20_000; i++ {
		b.WriteString("<a><b><c><d>x</d></c></b>")
	}
	for i := 0; i < 20_000; i++ {
		b.WriteString("</a>")
	}
	b.WriteString("</r>")
	doc := b.Bytes()
	query := "//a[b[c[d = 'zzz']]]"

	free := NewFilterSet()
	if err := free.Add("q", query); err != nil {
		t.Fatal(err)
	}
	want, err := free.MatchBytes(doc)
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	want = append([]string(nil), want...)

	s := NewFilterSet()
	if err := s.Add("q", query); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxLiveTuples: 1024})
	_, err = s.MatchBytes(doc)
	wantLimitError(t, err, "")

	s.SetLimits(Limits{MaxLiveTuples: 1 << 22, MaxBufferedBytes: 1 << 20})
	got, err := s.MatchBytes(doc)
	if err != nil || len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
		t.Fatalf("generous limits: ids=%v err=%v, want %v", got, err, want)
	}
}

// TestLimitsVerdictsIdenticalUnderGenerousBudgets: across the
// adversarial corpus and every parallel mode, enabling budgets that are
// never hit must not change a single verdict.
func TestLimitsVerdictsIdenticalUnderGenerousBudgets(t *testing.T) {
	corpus := map[string][]byte{
		"deep":  deepDoc(500),
		"attrs": manyAttrDoc(2_000),
		"text": []byte("<catalog><item><name>" +
			strings.Repeat("y", 1<<16) + "</name></item></catalog>"),
		"mixed": []byte("<catalog>" +
			strings.Repeat("<item><name>n</name><price>9</price></item>", 500) +
			"</catalog>"),
	}
	queries := []struct{ id, src string }{
		{"deep-a", "//a/b"},
		{"deep-x", "//a[a[a]]"},
		{"name", "//item/name"},
		{"valpred", "//item[name = 'n']"},
		{"attr", "/catalog/item[@k42 = 'v42']"},
	}
	generous := Limits{
		MaxDepth:         1 << 20,
		MaxTokenBytes:    1 << 26,
		MaxBufferedBytes: 1 << 26,
		MaxLiveTuples:    1 << 26,
		MaxDocBytes:      1 << 30,
	}

	free := NewFilterSet()
	for _, q := range queries {
		if err := free.Add(q.id, q.src); err != nil {
			t.Fatal(err)
		}
	}

	type matcher struct {
		name  string
		match func([]byte) ([]string, error)
		stats func() MemStats
		close func()
	}
	var ms []matcher
	{
		s := NewFilterSet()
		for _, q := range queries {
			if err := s.Add(q.id, q.src); err != nil {
				t.Fatal(err)
			}
		}
		s.SetLimits(generous)
		ms = append(ms, matcher{"FilterSet", s.MatchBytes, s.MemStats, nil})
	}
	{
		s := NewParallelFilterSet(2)
		for _, q := range queries {
			if err := s.Add(q.id, q.src); err != nil {
				t.Fatal(err)
			}
		}
		s.SetLimits(generous)
		ms = append(ms, matcher{"ParallelFilterSet", s.MatchBytes, s.MemStats, s.Close})
	}
	{
		p := NewFilterPool(2)
		for _, q := range queries {
			if err := p.Add(q.id, q.src); err != nil {
				t.Fatal(err)
			}
		}
		p.SetLimits(generous)
		ms = append(ms, matcher{"FilterPool", p.MatchBytes, p.MemStats, nil})
	}
	{
		s := NewAdaptiveFilterSet(2)
		for _, q := range queries {
			if err := s.Add(q.id, q.src); err != nil {
				t.Fatal(err)
			}
		}
		s.SetLimits(generous)
		ms = append(ms, matcher{"AdaptiveFilterSet", s.MatchBytes, s.MemStats, s.Close})
	}
	defer func() {
		for _, m := range ms {
			if m.close != nil {
				m.close()
			}
		}
	}()

	for docName, doc := range corpus {
		want, err := free.MatchBytes(doc)
		if err != nil {
			t.Fatalf("%s unlimited: %v", docName, err)
		}
		want = append([]string(nil), want...)
		for _, m := range ms {
			got, err := m.match(doc)
			if err != nil {
				t.Fatalf("%s on %s: %v", m.name, docName, err)
			}
			if !reflect.DeepEqual(append([]string(nil), got...), want) {
				t.Fatalf("%s on %s: ids = %v, want %v", m.name, docName, got, want)
			}
			if st := m.stats(); st.Events == 0 {
				t.Errorf("%s on %s: MemStats.Events = 0, accounting not live", m.name, docName)
			}
		}
	}
}

// TestLimitsMaxDocBytes: the whole-document size budget rejects
// oversized input up front on the byte path and mid-stream on the
// reader path.
func TestLimitsMaxDocBytes(t *testing.T) {
	doc := []byte("<catalog>" + strings.Repeat("<item/>", 1000) + "</catalog>")

	// An undecidable query, so the reader path cannot early-exit before
	// the byte budget is reached.
	s := NewFilterSet()
	if err := s.Add("q", "//missing"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxDocBytes: 1024})
	_, err := s.MatchBytes(doc)
	wantLimitError(t, err, "doc-bytes")
	s.SetChunkSize(512)
	_, err = s.MatchReader(bytes.NewReader(doc))
	wantLimitError(t, err, "doc-bytes")

	p := NewFilterPool(2)
	if err := p.Add("q", "//item"); err != nil {
		t.Fatal(err)
	}
	p.SetLimits(Limits{MaxDocBytes: 1024})
	_, err = p.MatchBytes(doc)
	wantLimitError(t, err, "doc-bytes")
}

// TestLimitsAbstainKeepsDecidedVerdicts: verdicts latched before the
// breach are final (matching is monotone) and survive into the
// abstained result.
func TestLimitsAbstainKeepsDecidedVerdicts(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("<r><hit>x</hit>")
	b.WriteString(strings.Repeat("<a>", 5000))
	b.WriteString(strings.Repeat("</a>", 5000))
	b.WriteString("</r>")
	doc := b.Bytes()

	s := NewFilterSet()
	if err := s.Add("early", "/r/hit"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("deep", "//a/b"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{MaxDepth: 100, Policy: LimitAbstain})
	ids, err := s.MatchBytes(doc)
	if err != nil {
		t.Fatalf("abstain policy returned error: %v", err)
	}
	if !s.Abstained() {
		t.Fatal("Abstained() = false")
	}
	if !reflect.DeepEqual(ids, []string{"early"}) {
		t.Fatalf("abstained ids = %v, want [early]", ids)
	}
}

// TestLimitsMemStatsOptimality: the accounting exposes the paper
// comparison — a positive lower bound and a finite ratio against it on
// a successful match.
func TestLimitsMemStatsOptimality(t *testing.T) {
	s := NewFilterSet()
	if err := s.Add("q", "//catalog/item/name"); err != nil {
		t.Fatal(err)
	}
	doc := []byte("<catalog>" + strings.Repeat("<item><name>n</name></item>", 100) + "</catalog>")
	if _, err := s.MatchBytes(doc); err != nil {
		t.Fatal(err)
	}
	ms := s.MemStats()
	if ms.Events == 0 || ms.MaxDepth == 0 {
		t.Fatalf("MemStats not populated: %+v", ms)
	}
	if ms.LowerBoundBits <= 0 {
		t.Fatalf("LowerBoundBits = %d, want > 0", ms.LowerBoundBits)
	}
	if ms.OptimalityRatio <= 0 {
		t.Fatalf("OptimalityRatio = %v, want > 0", ms.OptimalityRatio)
	}
	if ms.String() == "" {
		t.Fatal("MemStats.String() empty")
	}

	f, err := MustCompile("//catalog/item/name").NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MatchBytes(doc); err != nil {
		t.Fatal(err)
	}
	fs := f.Stats()
	if fs.LowerBoundBits <= 0 || fs.OptimalityRatio <= 0 {
		t.Fatalf("Filter stats lower bound not populated: %+v", fs)
	}
}

// TestLimitsSteadyStateAllocs: enabling budgets that are never hit must
// keep the warmed byte path allocation-free — the limit checks are
// plain integer compares.
func TestLimitsSteadyStateAllocs(t *testing.T) {
	doc := []byte("<catalog>" + strings.Repeat("<item><name>n</name></item>", 200) + "</catalog>")
	s := NewFilterSet()
	if err := s.Add("q", "//item/name"); err != nil {
		t.Fatal(err)
	}
	s.SetLimits(Limits{
		MaxDepth:         1 << 16,
		MaxTokenBytes:    1 << 24,
		MaxBufferedBytes: 1 << 24,
		MaxLiveTuples:    1 << 24,
		MaxDocBytes:      1 << 30,
	})
	for i := 0; i < 3; i++ {
		if _, err := s.MatchBytes(doc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.MatchBytes(doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("limits-enabled steady-state MatchBytes: %v allocs/run, want 0", allocs)
	}
}

// FuzzMatchLimitsNoPanic: arbitrary documents under arbitrary tight
// budgets must never panic, and the set must stay reusable after any
// breach, under both policies.
func FuzzMatchLimitsNoPanic(f *testing.F) {
	f.Add([]byte("<a><b>x</b></a>"), uint16(4), uint16(64), uint16(64), uint16(8))
	f.Add(deepDoc(64), uint16(8), uint16(16), uint16(16), uint16(4))
	f.Add(manyAttrDoc(32), uint16(2), uint16(32), uint16(8), uint16(2))
	f.Add([]byte("<a>"+strings.Repeat("y", 256)+"</a>"), uint16(1), uint16(3), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, doc []byte, d, tb, bb, lt uint16) {
		lim := Limits{
			MaxDepth:         int(d % 128),
			MaxTokenBytes:    int(tb),
			MaxBufferedBytes: int(bb),
			MaxLiveTuples:    int(lt % 512),
		}
		for _, pol := range []LimitPolicy{LimitFail, LimitAbstain} {
			lim.Policy = pol
			s := NewFilterSet()
			if err := s.Add("q1", "//a/b"); err != nil {
				t.Fatal(err)
			}
			if err := s.Add("q2", "//a[b = 'x']"); err != nil {
				t.Fatal(err)
			}
			s.SetLimits(lim)
			_, _ = s.MatchBytes(doc)
			_, _ = s.MatchReader(bytes.NewReader(doc))
			// Reusable after whatever just happened: a small well-formed
			// document must still give its verdict (or a budget breach —
			// the limits may be tiny — but never a panic or a stale error).
			ids, err := s.MatchString("<a><b>x</b></a>")
			if err != nil && !limitBreach(err) {
				t.Fatalf("reuse after fuzzed doc: %v", err)
			}
			_ = ids
		}
	})
}
