package streamxpath

import (
	"fmt"
	"io"
	"strings"

	"streamxpath/internal/core"
	"streamxpath/internal/sax"
)

// FilterSet matches one document stream against many standing queries in a
// single pass — the selective-dissemination workload of the paper's
// introduction (ref [1]). The document is tokenized once; each event is
// fanned out to the subscriptions' filters. A filter whose match has
// become definitive (conjunctive matching is monotone, so a provisional
// match is final) stops receiving events, which makes broad subscriptions
// cheap on large documents.
//
// A FilterSet is not safe for concurrent use; create one per goroutine
// (compiled queries are shared safely by recompiling per set).
type FilterSet struct {
	ids     []string
	filters []*core.Filter
}

// NewFilterSet returns an empty set.
func NewFilterSet() *FilterSet { return &FilterSet{} }

// Add compiles a subscription under the given id. Ids must be unique.
func (s *FilterSet) Add(id, querySrc string) error {
	for _, existing := range s.ids {
		if existing == id {
			return fmt.Errorf("streamxpath: duplicate subscription id %q", id)
		}
	}
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	f, err := core.Compile(q.q)
	if err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	s.ids = append(s.ids, id)
	s.filters = append(s.filters, f)
	return nil
}

// Len returns the number of subscriptions.
func (s *FilterSet) Len() int { return len(s.ids) }

// MatchReader streams one document past every subscription and returns the
// ids that match, in insertion order.
func (s *FilterSet) MatchReader(r io.Reader) ([]string, error) {
	for _, f := range s.filters {
		f.Reset()
	}
	// done[i] marks filters with a definitive positive answer; they stop
	// receiving events (monotone early exit). Negative answers are only
	// definitive at endDocument.
	done := make([]bool, len(s.filters))
	tok := sax.NewTokenizer(r)
	sawEnd := false
	for {
		e, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if e.Kind == sax.EndDocument {
			sawEnd = true
		}
		for i, f := range s.filters {
			if done[i] && e.Kind != sax.EndDocument {
				continue
			}
			if err := f.Process(e); err != nil {
				return nil, fmt.Errorf("streamxpath: subscription %q: %w", s.ids[i], err)
			}
			if !done[i] && f.WouldMatchIfClosedNow() {
				done[i] = true
			}
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("streamxpath: document ended prematurely")
	}
	var out []string
	for i, f := range s.filters {
		if f.Matched() {
			out = append(out, s.ids[i])
		}
	}
	return out, nil
}

// MatchString is MatchReader over a string.
func (s *FilterSet) MatchString(xml string) ([]string, error) {
	return s.MatchReader(strings.NewReader(xml))
}
