package streamxpath

import (
	"fmt"
	"io"

	"streamxpath/internal/engine"
	"streamxpath/internal/limits"
	"streamxpath/internal/sax"
)

// FilterSet matches one document stream against many standing queries in
// a single pass — the selective-dissemination workload of the paper's
// introduction (ref [1]). Subscriptions are compiled into ONE shared
// evaluation engine (internal/engine): queries are canonicalized into
// step keys and merged into prefix-sharing indexes — a combined NFA for
// linear path queries and a shared frontier trie for predicated ones — so
// per-event cost tracks the amount of distinct active structure, not the
// subscription count. A thousand subscriptions sharing a //catalog/item
// prefix pay for that prefix once.
//
// Per subscription the engine preserves the standalone Filter's
// semantics: answers are identical to running each query through its own
// core filter, and a subscription whose match has become definitive
// (conjunctive matching is monotone, so a provisional match is final)
// stops consuming events.
//
// Add and Remove may be called between documents; the shared indexes are
// rebuilt lazily before the next document starts. A FilterSet is not safe
// for concurrent use; create one per goroutine — or use the multi-core
// engines: ParallelFilterSet (one document fanned out to subscription
// shards) and FilterPool (documents matched concurrently on replicas).
type FilterSet struct {
	e *engine.Engine
	// tok and ids are the reusable tokenizer and result buffer of the
	// MatchBytes fast path.
	tok *sax.TokenizerBytes
	ids []string

	// Chunked-reader state: the resumable tokenizer of MatchReader, its
	// chunk size (0 = DefaultChunkSize), the last call's stats, and the
	// staging buffer of MatchString. procFn/decFn are the streamDoc
	// callbacks, built once so repeat MatchReader calls allocate nothing.
	stok   *sax.StreamTokenizer
	chunk  int
	rs     ReaderStats
	buf    []byte
	procFn func(sax.ByteEvent) error
	decFn  func() bool

	// lim holds the per-document resource budgets and the breach policy;
	// abstained records whether the last Match call degraded under
	// LimitAbstain.
	lim       Limits
	abstained bool
}

// NewFilterSet returns an empty set.
func NewFilterSet() *FilterSet { return &FilterSet{e: engine.New()} }

// Add compiles a subscription under the given id and merges it into the
// shared engine. Ids must be unique. Queries outside the streamable
// fragment (see Query.NewFilter) are rejected.
func (s *FilterSet) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.e.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// AddExtract is Add with fragment extraction enabled: when the
// subscription matches a document under a Match*Result call, the result
// carries the matched element's subtree (document-order-first match) —
// or the decoded attribute value for attribute-selecting queries — as a
// Fragment. The boolean Match methods ignore the flag entirely and keep
// their allocation-free fast path.
func (s *FilterSet) AddExtract(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.e.AddExtract(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription, reporting whether it existed.
func (s *FilterSet) Remove(id string) bool { return s.e.Remove(id) }

// Len returns the number of subscriptions.
func (s *FilterSet) Len() int { return s.e.Len() }

// IDs returns the subscription ids in insertion order.
func (s *FilterSet) IDs() []string { return s.e.IDs() }

// Reset prepares the set for the next document and applies any pending
// Add/Remove calls. MatchReader resets implicitly; Reset exists for
// callers driving the engine event by event across documents.
func (s *FilterSet) Reset() { s.e.Reset() }

// SetLimits configures the per-document resource budgets and breach
// policy (the zero value disables them). Limits persist across documents
// and Reset; a breach under LimitFail surfaces as a *LimitError, under
// LimitAbstain as a degraded result (see Abstained). Either way the set
// stays usable — nothing ever panics, and no budget check allocates until
// a breach actually occurs.
func (s *FilterSet) SetLimits(l Limits) {
	s.lim = l
	s.e.SetLimits(l.internal())
	if s.tok != nil {
		s.tok.SetLimits(l.internal())
	}
	if s.stok != nil {
		s.stok.SetLimits(l.internal())
	}
}

// Limits returns the configured budgets.
func (s *FilterSet) Limits() Limits { return s.lim }

// Abstained reports whether the last Match call hit a resource budget
// under LimitAbstain and returned only the verdicts decided before the
// breach.
//
// Deprecated: use the Match*Result methods, whose MatchResult.Abstained
// is the same call's flag rather than whatever call finished last.
func (s *FilterSet) Abstained() bool { return s.abstained }

// MemStats returns the live-memory accounting of the last document: the
// matching state's component peaks, the paper's cost model applied to
// them, and the optimality ratio against the lower bound.
//
// Deprecated: use the Match*Result methods, whose MatchResult.MemStats
// is the same call's accounting rather than the last call's.
func (s *FilterSet) MemStats() MemStats { return s.e.MemStats() }

// result assembles the current document's MatchResult from the engine
// state. Fragment collection and the memory accounting run only on the
// Result paths (mode != CaptureOff), keeping the boolean wrappers'
// per-document cost unchanged.
func (s *FilterSet) result(doc []byte, mode engine.CaptureMode, copyAll bool) MatchResult {
	res := MatchResult{MatchedIDs: s.appendIDs(), Abstained: s.abstained}
	if mode != engine.CaptureOff {
		res.Fragments = toFragments(s.e.AppendFragments(nil, doc), copyAll)
		res.MemStats = s.e.MemStats()
	}
	return res
}

// degraded applies the breach policy to an error carrying a
// *LimitError: under LimitAbstain the verdicts already decided
// (definitive, by monotonicity) — and the fragments finalized before
// the breach — come back with a nil error. Any other error passes
// through unchanged.
func (s *FilterSet) degraded(err error, doc []byte, mode engine.CaptureMode, copyAll bool) (MatchResult, error) {
	if s.lim.Policy == LimitAbstain && limitBreach(err) {
		s.abstained = true
		return s.result(doc, mode, copyAll), nil
	}
	return MatchResult{}, err
}

// MatchReader streams one document past every subscription through the
// chunked interned-symbol byte path and returns the ids that match, in
// insertion order. The document is read in fixed-size chunks
// (SetChunkSize; DefaultChunkSize otherwise) and tokenized by a
// resumable tokenizer that retains only the unconsumed tail across chunk
// boundaries, so peak memory is bounded by chunk size plus open-element
// depth rather than document size, and steady-state per-event cost is
// allocation-free — the same pipeline as MatchBytes, without buffering
// the document. When every subscription's verdict is decided mid-stream
// the reader stops being consumed — ReaderStats reports the early exit,
// and whether it was (partly) negative — and the document's remainder is
// not validated. Positive verdicts latch by monotonicity; negative ones
// by the dead-state analysis (no continuation of the document can reach
// the subscription's remaining steps), so a `/news/...`-only set
// abandons a <catalog> document at its first start tag. The result is
// non-nil even when empty and is reused by the next Match call on this
// set.
func (s *FilterSet) MatchReader(r io.Reader) ([]string, error) {
	res, err := s.matchReader(r, engine.CaptureOff)
	return res.MatchedIDs, err
}

// MatchReaderResult is MatchReader returning the unified MatchResult:
// the matched ids plus, for extraction-enabled subscriptions
// (AddExtract), the matched subtrees re-serialized to canonical form —
// the input is never buffered whole, so reader-path fragments are
// rebuilt from the event stream (attribute order and quoting
// normalized, empty-element tags expanded) and freshly allocated. The
// result also carries this call's own reader and memory accounting.
// When extraction subscriptions have open candidate captures, early
// exit is deferred until they finalize, so a decided verdict never
// truncates a fragment.
func (s *FilterSet) MatchReaderResult(r io.Reader) (MatchResult, error) {
	return s.matchReader(r, engine.CaptureSerial)
}

func (s *FilterSet) matchReader(r io.Reader, mode engine.CaptureMode) (MatchResult, error) {
	// Reset up front so a previous document that failed mid-stream (and
	// never reached endDocument) cannot wedge the engine in its
	// half-open state.
	s.abstained = false
	s.e.SetCapture(mode)
	s.e.Reset()
	if s.stok == nil {
		s.stok = sax.NewStreamTokenizer(s.e.Symbols())
		s.stok.SetLimits(s.lim.internal())
		s.procFn = func(ev sax.ByteEvent) error {
			if err := s.e.ProcessBytes(ev); err != nil {
				return fmt.Errorf("streamxpath: %w", err)
			}
			return nil
		}
		s.decFn = s.e.Decided
	} else {
		s.stok.Reset()
	}
	sawEnd, err := streamDoc(r, s.stok, s.chunk, &s.rs, s.procFn, s.decFn)
	if err != nil {
		res, err := s.degraded(err, nil, mode, false)
		s.rs.Abstained = s.abstained
		res.ReaderStats = s.rs
		return res, err
	}
	if !sawEnd && !s.rs.EarlyExit {
		return MatchResult{}, fmt.Errorf("streamxpath: document ended prematurely")
	}
	res := s.result(nil, mode, false)
	s.rs.DecidedNegative = s.rs.EarlyExit && len(res.MatchedIDs) < s.e.Len()
	res.ReaderStats = s.rs
	return res, nil
}

// SetChunkSize sets the read granularity of MatchReader (n <= 0 restores
// DefaultChunkSize).
func (s *FilterSet) SetChunkSize(n int) { s.chunk = n }

// ReaderStats returns the input accounting of the last MatchReader call:
// bytes read, bytes tokenized, and whether every verdict was decided
// before end of input.
//
// Deprecated: use MatchReaderResult, whose MatchResult.ReaderStats is
// the same call's accounting rather than the last call's.
func (s *FilterSet) ReaderStats() ReaderStats { return s.rs }

// MatchString matches a document given as a string: it is staged into a
// reusable buffer and matched through the MatchBytes fast path (the
// whole document is therefore validated — no early exit). Unlike
// MatchBytes and MatchReader the returned slice is freshly allocated.
func (s *FilterSet) MatchString(xml string) ([]string, error) {
	s.buf = append(s.buf[:0], xml...)
	res, err := s.matchBytes(s.buf, engine.CaptureOff, false)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.MatchedIDs))
	copy(out, res.MatchedIDs)
	return out, nil
}

// MatchStringResult is MatchString returning the unified MatchResult.
// The staging buffer is reused across calls, so every fragment —
// subtree or attribute value — is freshly allocated and owned by the
// caller. MatchedIDs is freshly allocated too, matching MatchString.
func (s *FilterSet) MatchStringResult(xml string) (MatchResult, error) {
	s.buf = append(s.buf[:0], xml...)
	res, err := s.matchBytes(s.buf, engine.CaptureSlice, true)
	if err != nil {
		return MatchResult{}, err
	}
	out := make([]string, len(res.MatchedIDs))
	copy(out, res.MatchedIDs)
	res.MatchedIDs = out
	return res, nil
}

// MatchBytes matches one in-memory document through the interned-symbol
// fast path: the tokenizer interns names into the engine's shared symbol
// table and every matching layer dispatches on the resulting ids, so
// steady-state matching of a predicate-free subscription set performs
// zero allocations per event (and zero per document once warm). The
// returned slice is reused by the next MatchBytes call — copy it if it
// must outlive the call. It is non-nil even when empty.
func (s *FilterSet) MatchBytes(doc []byte) ([]string, error) {
	res, err := s.matchBytes(doc, engine.CaptureOff, false)
	return res.MatchedIDs, err
}

// MatchBytesResult is MatchBytes returning the unified MatchResult: the
// matched ids plus, for extraction-enabled subscriptions (AddExtract),
// the matched element's subtree. Subtree fragments are zero-copy
// subslices of doc — the raw bytes of the matched element, valid as
// long as doc is — while attribute-value fragments are decoded copies.
// The result also carries this call's abstain flag and memory
// accounting, replacing the last-call accessors.
func (s *FilterSet) MatchBytesResult(doc []byte) (MatchResult, error) {
	return s.matchBytes(doc, engine.CaptureSlice, false)
}

func (s *FilterSet) matchBytes(doc []byte, mode engine.CaptureMode, copyAll bool) (MatchResult, error) {
	s.abstained = false
	s.e.SetCapture(mode)
	s.e.Reset() // recover from a document abandoned mid-stream
	if l := s.lim.MaxDocBytes; l > 0 && int64(len(doc)) > l {
		return s.degraded(fmt.Errorf("streamxpath: %w",
			&limits.Error{Resource: "doc-bytes", Limit: l, Observed: int64(len(doc))}),
			doc, mode, copyAll)
	}
	if s.tok == nil {
		s.tok = sax.NewTokenizerBytes(doc, s.e.Symbols())
		s.tok.SetLimits(s.lim.internal())
	} else {
		s.tok.Reset(doc)
	}
	sawEnd := false
	for {
		e, err := s.tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s.degraded(err, doc, mode, copyAll)
		}
		if e.Kind == sax.EndDocument {
			sawEnd = true
		}
		if err := s.e.ProcessBytes(e); err != nil {
			return s.degraded(fmt.Errorf("streamxpath: %w", err), doc, mode, copyAll)
		}
	}
	if !sawEnd {
		return MatchResult{}, fmt.Errorf("streamxpath: document ended prematurely")
	}
	return s.result(doc, mode, copyAll), nil
}

// appendIDs refills the reusable result buffer with the matched ids.
func (s *FilterSet) appendIDs() []string {
	if s.ids == nil {
		s.ids = make([]string, 0, 8)
	}
	s.ids = s.e.AppendMatchedIDs(s.ids[:0])
	return s.ids
}

// FilterSetStats reports the size of the shared structures and the work
// of the last document — how much evaluation the subscriptions actually
// share. SpineSteps/SharedStates is the prefix-sharing factor.
type FilterSetStats = engine.Stats

// Stats returns the engine statistics. Pending Add/Remove calls are
// compiled first.
func (s *FilterSet) Stats() FilterSetStats { return s.e.Stats() }
