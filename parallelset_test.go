package streamxpath_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"streamxpath"
)

// randomSubscription draws one subscription source from the mixed
// template pool used across the parallel equivalence tests: linear
// NFA-routed queries, predicated trie-routed queries, wildcards and
// attribute tests.
func randomSubscription(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("//catalog/item/f%d", rng.Intn(6))
	case 1:
		return fmt.Sprintf("/catalog//item[priority > %d]", rng.Intn(8))
	case 2:
		return fmt.Sprintf(`//item[f%d = "v%d"]`, rng.Intn(4), rng.Intn(4))
	case 3:
		return fmt.Sprintf("//item[f%d and priority < %d]/f%d", rng.Intn(4), rng.Intn(8), rng.Intn(4))
	case 4:
		return "//*[priority]"
	default:
		return fmt.Sprintf(`//item[@id = "%d"]`, rng.Intn(5))
	}
}

// randomCatalog builds a feed document matching the template vocabulary.
func randomCatalog(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for j := 0; j < 1+rng.Intn(8); j++ {
		fmt.Fprintf(&b, `<item id="%d"><priority>%d</priority>`, rng.Intn(5), rng.Intn(10))
		for k := 0; k < rng.Intn(4); k++ {
			fmt.Fprintf(&b, "<f%d>v%d</f%d>", k, rng.Intn(4), k)
		}
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return b.String()
}

// TestParallelFilterSetEquivalenceRandomized is the tentpole correctness
// gate: across shard counts 1/2/8, randomized subscription sets matched
// against randomized document streams must return exactly the sequential
// FilterSet's answer — same ids, same insertion order — document after
// document, through Add/Remove churn.
func TestParallelFilterSetEquivalenceRandomized(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(500 + shards)))
			for trial := 0; trial < 25; trial++ {
				seq := streamxpath.NewFilterSet()
				par := streamxpath.NewParallelFilterSet(shards)
				n := 2 + rng.Intn(12)
				for i := 0; i < n; i++ {
					id := fmt.Sprintf("s%d", i)
					src := randomSubscription(rng)
					if err := seq.Add(id, src); err != nil {
						t.Fatal(err)
					}
					if err := par.Add(id, src); err != nil {
						t.Fatal(err)
					}
				}
				for d := 0; d < 4; d++ {
					doc := []byte(randomCatalog(rng))
					want, err := seq.MatchBytes(doc)
					if err != nil {
						t.Fatal(err)
					}
					got, err := par.MatchBytes(doc)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d doc %d: parallel %v != sequential %v\ndoc: %s",
							trial, d, got, want, doc)
					}
					// Churn between documents, identically on both sets.
					if d == 1 && n > 2 {
						victim := fmt.Sprintf("s%d", rng.Intn(n))
						if seq.Remove(victim) != par.Remove(victim) {
							t.Fatalf("Remove(%s) verdicts differ", victim)
						}
						src := randomSubscription(rng)
						id := fmt.Sprintf("extra%d", d)
						if err := seq.Add(id, src); err != nil {
							t.Fatal(err)
						}
						if err := par.Add(id, src); err != nil {
							t.Fatal(err)
						}
					}
				}
				par.Close()
			}
		})
	}
}

// TestFilterPoolEquivalenceRandomized checks the document-parallel mode
// against the sequential FilterSet on the same randomized workloads.
func TestFilterPoolEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 20; trial++ {
		seq := streamxpath.NewFilterSet()
		pool := streamxpath.NewFilterPool(3)
		for i := 0; i < 2+rng.Intn(10); i++ {
			id := fmt.Sprintf("s%d", i)
			src := randomSubscription(rng)
			if err := seq.Add(id, src); err != nil {
				t.Fatal(err)
			}
			if err := pool.Add(id, src); err != nil {
				t.Fatal(err)
			}
		}
		docs := make([][]byte, 8)
		for i := range docs {
			docs[i] = []byte(randomCatalog(rng))
		}
		want := make([][]string, len(docs))
		for i, doc := range docs {
			ids, err := seq.MatchBytes(doc)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append([]string{}, ids...)
		}
		var wg sync.WaitGroup
		for i, doc := range docs {
			wg.Add(1)
			go func(i int, doc []byte) {
				defer wg.Done()
				got, err := pool.MatchBytes(doc)
				if err != nil {
					t.Errorf("doc %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(append([]string{}, got...), want[i]) {
					t.Errorf("trial %d doc %d: pool %v != sequential %v", trial, i, got, want[i])
				}
			}(i, doc)
		}
		wg.Wait()
	}
}

// TestParallelFilterSetConcurrentMatch exercises the documented
// concurrency contract under the race detector: Match calls from many
// goroutines serialize safely, and Add/Remove between matches is safe.
func TestParallelFilterSetConcurrentMatch(t *testing.T) {
	par := streamxpath.NewParallelFilterSet(4)
	defer par.Close()
	for i := 0; i < 20; i++ {
		if err := par.Add(fmt.Sprintf("s%d", i), fmt.Sprintf("//catalog/item/f%d", i%6)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(707))
	docs := make([][]byte, 16)
	for i := range docs {
		docs[i] = []byte(randomCatalog(rng))
	}
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for _, doc := range docs {
					// Results must be copied out: the engine's buffer is
					// shared across the serialized Match calls.
					if _, err := par.MatchBytes(doc); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		// Churn strictly between the concurrent match waves.
		par.Remove(fmt.Sprintf("s%d", round))
		if err := par.Add(fmt.Sprintf("r%d", round), "//catalog/item"); err != nil {
			t.Fatal(err)
		}
	}
	if par.Len() != 20 {
		t.Fatalf("Len = %d, want 20", par.Len())
	}
}

// TestParallelFilterSetMatchVariants covers MatchString/MatchReader and
// the malformed-document error paths of the parallel entry points.
func TestParallelFilterSetMatchVariants(t *testing.T) {
	par := streamxpath.NewParallelFilterSet(2)
	defer par.Close()
	if err := par.Add("a", "//item"); err != nil {
		t.Fatal(err)
	}
	doc := "<feed><item/></feed>"
	ids, err := par.MatchString(doc)
	if err != nil || !reflect.DeepEqual(ids, []string{"a"}) {
		t.Fatalf("MatchString: %v %v", ids, err)
	}
	ids, err = par.MatchReader(strings.NewReader(doc))
	if err != nil || !reflect.DeepEqual(ids, []string{"a"}) {
		t.Fatalf("MatchReader: %v %v", ids, err)
	}
	ids, err = par.MatchString("<feed><other/></feed>")
	if err != nil || ids == nil || len(ids) != 0 {
		t.Fatalf("empty result must be non-nil and empty: %v %v", ids, err)
	}
	if _, err := par.MatchString("<feed><item></feed>"); err == nil {
		t.Fatal("malformed document should error")
	}
	if _, err := par.MatchString(doc); err != nil {
		t.Fatalf("recovery after malformed document: %v", err)
	}
}
