package streamxpath

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"streamxpath/internal/parallel"
)

// ParallelFilterSet is the multi-core FilterSet: subscriptions are
// hash-sharded across N independent copies of the shared dissemination
// engine, all bound to one concurrent symbol table. Each document is
// tokenized exactly once (on the calling goroutine, through the
// interned-symbol byte fast path) and its symbol events are fanned out
// to per-shard worker goroutines through reusable batched event rings;
// the per-shard match sets are merged back into subscription insertion
// order, so results are byte-identical to the sequential FilterSet on
// every document.
//
// This mode parallelizes one document at a time across cores — the right
// shape when the subscription set is large. Match calls from multiple
// goroutines are safe but serialize; to match many documents
// concurrently instead, use FilterPool.
//
// A ParallelFilterSet owns worker goroutines: call Close when done.
type ParallelFilterSet struct {
	s *parallel.Sharded
	// mu guards buf (the MatchString staging buffer), chunk, lim and the
	// abstain flags; the engine serializes Match calls itself.
	mu          sync.Mutex
	buf         []byte
	chunk       int
	lim         Limits
	abstained   bool
	rdAbstained bool
}

// applyLimitPolicy implements the caller-selected degradation shared by
// the parallel wrappers: under LimitAbstain a resource-budget breach
// degrades to the verdicts decided before it (matching is monotone, so
// they are final); any other error — or the default LimitFail policy —
// passes through.
func applyLimitPolicy(pol LimitPolicy, ids []string, err error) ([]string, bool, error) {
	if err == nil {
		return ids, false, nil
	}
	if pol == LimitAbstain && limitBreach(err) {
		if ids == nil {
			ids = []string{}
		}
		return ids, true, nil
	}
	return nil, false, err
}

// NewParallelFilterSet returns an empty set with the given number of
// shards; shards < 1 selects GOMAXPROCS.
func NewParallelFilterSet(shards int) *ParallelFilterSet {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	return &ParallelFilterSet{s: parallel.NewSharded(shards)}
}

// Add compiles a subscription under the given id and merges it into its
// shard's engine. Ids must be unique across the whole set. Queries
// outside the streamable fragment (see Query.NewFilter) are rejected.
func (s *ParallelFilterSet) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.s.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// AddExtract is Add with fragment extraction enabled: the Match*Result
// methods return the subscription's matched subtree as a Fragment. The
// boolean Match methods ignore the flag and keep their fast path.
func (s *ParallelFilterSet) AddExtract(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.s.AddExtract(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription, reporting whether it existed.
func (s *ParallelFilterSet) Remove(id string) bool { return s.s.Remove(id) }

// Len returns the number of subscriptions.
func (s *ParallelFilterSet) Len() int { return s.s.Len() }

// IDs returns the subscription ids in insertion order.
func (s *ParallelFilterSet) IDs() []string { return s.s.IDs() }

// Shards returns the shard count.
func (s *ParallelFilterSet) Shards() int { return s.s.Shards() }

// SetLimits configures the per-document resource budgets (and breach
// policy) on every shard. The zero value disables them. It waits for an
// in-flight Match call to finish, so budgets never change mid-document.
func (s *ParallelFilterSet) SetLimits(l Limits) {
	s.mu.Lock()
	s.lim = l
	s.mu.Unlock()
	s.s.SetLimits(l.internal())
}

// Limits returns the configured budgets.
func (s *ParallelFilterSet) Limits() Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lim
}

// Abstained reports whether the last Match call hit a resource budget
// under LimitAbstain and returned the verdicts decided before the
// breach.
//
// Deprecated: use the Match*Result methods, whose MatchResult.Abstained
// is the same call's flag rather than whatever call finished last.
func (s *ParallelFilterSet) Abstained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abstained
}

// MemStats aggregates the shards' live-memory accounting for the last
// document (see MemStats).
//
// Deprecated: use the Match*Result methods, whose MatchResult.MemStats
// is the same call's accounting rather than the last call's.
func (s *ParallelFilterSet) MemStats() MemStats { return s.s.MemStats() }

// finishLocked applies the abstain policy to one Match call's outcome
// and records the flag. Caller holds s.mu.
func (s *ParallelFilterSet) finishLocked(ids []string, err error, rd bool) ([]string, error) {
	out, abst, err := applyLimitPolicy(s.lim.Policy, ids, err)
	s.abstained = abst
	if rd {
		s.rdAbstained = abst
	}
	return out, err
}

func (s *ParallelFilterSet) finish(ids []string, err error, rd bool) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishLocked(ids, err, rd)
}

// finishFlags is finish additionally returning this call's abstain flag
// (the stored one is last-call state a concurrent call may overwrite).
func (s *ParallelFilterSet) finishFlags(ids []string, err error, rd bool) ([]string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, abst, err := applyLimitPolicy(s.lim.Policy, ids, err)
	s.abstained = abst
	if rd {
		s.rdAbstained = abst
	}
	return out, abst, err
}

// MatchBytes matches one in-memory document against every subscription
// and returns the matching ids in insertion order — the same answer, in
// the same order, as FilterSet.MatchBytes. The returned slice is reused
// by the next Match call on this set; copy it if it must outlive the
// call. It is non-nil even when empty.
func (s *ParallelFilterSet) MatchBytes(doc []byte) ([]string, error) {
	ids, err := s.s.MatchBytes(doc)
	return s.finish(ids, err, false)
}

// MatchBytesResult is MatchBytes returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions (AddExtract). Subtree fragments are zero-copy
// subslices of doc; attribute values are decoded copies. The result
// carries this call's abstain flag and aggregated memory accounting.
func (s *ParallelFilterSet) MatchBytesResult(doc []byte) (MatchResult, error) {
	ids, fr, err := s.s.MatchBytesFrags(doc)
	ids, abst, err := s.finishFlags(ids, err, false)
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{
		MatchedIDs: ids,
		Fragments:  toFragments(fr, false),
		Abstained:  abst,
		MemStats:   s.s.MemStats(),
	}, nil
}

// MatchStringResult is MatchBytesResult over a string. The staging
// buffer is reused, so every fragment is freshly allocated and owned by
// the caller.
func (s *ParallelFilterSet) MatchStringResult(xml string) (MatchResult, error) {
	s.mu.Lock()
	s.buf = append(s.buf[:0], xml...)
	buf := s.buf
	s.mu.Unlock()
	ids, fr, err := s.s.MatchBytesFrags(buf)
	ids, abst, err := s.finishFlags(ids, err, false)
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{
		MatchedIDs: ids,
		Fragments:  toFragments(fr, true),
		Abstained:  abst,
		MemStats:   s.s.MemStats(),
	}, nil
}

// MatchReaderResult is MatchReader returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions, re-serialized to canonical form (the input is never
// buffered whole) and freshly allocated, with this call's reader and
// memory accounting.
func (s *ParallelFilterSet) MatchReaderResult(r io.Reader) (MatchResult, error) {
	s.mu.Lock()
	chunk := s.chunk
	s.mu.Unlock()
	ids, fr, rs, err := s.s.MatchReaderFrags(r, chunk)
	ids, abst, err := s.finishFlags(ids, err, true)
	if err != nil {
		return MatchResult{}, err
	}
	res := MatchResult{
		MatchedIDs:  ids,
		Fragments:   toFragments(fr, false),
		Abstained:   abst,
		ReaderStats: ReaderStats(rs),
		MemStats:    s.s.MemStats(),
	}
	res.ReaderStats.Abstained = abst
	return res, nil
}

// MatchReader streams the document from r through the chunked parallel
// path: the calling goroutine tokenizes each chunk as it arrives
// (SetChunkSize; DefaultChunkSize otherwise) and broadcasts event
// batches to the shard workers immediately, overlapping I/O,
// tokenization and matching — the document is never buffered whole.
// Results are identical to MatchBytes on the same bytes. Once every
// shard's verdicts are decided mid-stream the reader is abandoned
// (ReaderStats reports the early exit) and the document's remainder is
// not validated.
func (s *ParallelFilterSet) MatchReader(r io.Reader) ([]string, error) {
	s.mu.Lock()
	chunk := s.chunk
	s.mu.Unlock()
	ids, err := s.s.MatchReader(r, chunk)
	return s.finish(ids, err, true)
}

// SetChunkSize sets the read granularity of MatchReader (n <= 0 restores
// DefaultChunkSize).
func (s *ParallelFilterSet) SetChunkSize(n int) {
	s.mu.Lock()
	s.chunk = n
	s.mu.Unlock()
}

// ReaderStats returns the input accounting of the last MatchReader call:
// bytes read, bytes tokenized, and whether every verdict was decided
// before end of input.
//
// Deprecated: use MatchReaderResult, whose MatchResult.ReaderStats is
// the same call's accounting rather than the last call's.
func (s *ParallelFilterSet) ReaderStats() ReaderStats {
	out := ReaderStats(s.s.ReadStats())
	s.mu.Lock()
	out.Abstained = s.rdAbstained
	s.mu.Unlock()
	return out
}

// MatchString is MatchBytes over a string.
func (s *ParallelFilterSet) MatchString(xml string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf[:0], xml...)
	ids, err := s.s.MatchBytes(s.buf)
	return s.finishLocked(ids, err, false)
}

// Stats aggregates the shard engines' statistics (sizes and work sum
// across shards; MaxLevel is the maximum).
func (s *ParallelFilterSet) Stats() FilterSetStats { return s.s.Stats() }

// Close stops the shard worker goroutines. The set is unusable
// afterwards; Close is idempotent.
func (s *ParallelFilterSet) Close() { s.s.Close() }

// FilterPool is the document-parallel dissemination engine: a pool of
// complete engine replicas, each carrying every subscription, matching
// whole documents independently. MatchBytes is safe to call from any
// number of goroutines concurrently — each call checks out an idle
// replica — so a document feed spreads across cores with no coordination
// beyond the checkout. All replicas share one concurrent symbol table,
// so the feed's name vocabulary is interned once, whichever replica sees
// a name first.
//
// Choose FilterPool when documents arrive faster than one core matches
// them (feeds of small documents); choose ParallelFilterSet when a
// single document must be matched against a very large subscription set
// as fast as possible.
type FilterPool struct {
	p *parallel.Pool
	// mu guards chunk, lim and the abstain flags (with concurrent Match
	// calls these carry "most recently finished call" semantics).
	mu          sync.Mutex
	chunk       int
	lim         Limits
	abstained   bool
	rdAbstained bool
}

// NewFilterPool returns an empty pool with the given number of replica
// workers; workers < 1 selects GOMAXPROCS.
func NewFilterPool(workers int) *FilterPool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &FilterPool{p: parallel.NewPool(workers)}
}

// Add compiles a subscription under the given id on every replica.
// It waits for in-flight Match calls to drain.
func (p *FilterPool) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := p.p.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// AddExtract is Add with fragment extraction enabled: the Match*Result
// methods return the subscription's matched subtree as a Fragment. The
// boolean Match methods ignore the flag and keep their fast path.
func (p *FilterPool) AddExtract(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := p.p.AddExtract(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription from every replica, reporting
// whether it existed. It waits for in-flight Match calls to drain.
func (p *FilterPool) Remove(id string) bool { return p.p.Remove(id) }

// Len returns the number of subscriptions.
func (p *FilterPool) Len() int { return p.p.Len() }

// IDs returns the subscription ids in insertion order.
func (p *FilterPool) IDs() []string { return p.p.IDs() }

// Workers returns the replica count.
func (p *FilterPool) Workers() int { return p.p.Workers() }

// SetLimits configures the per-document resource budgets (and breach
// policy) on every replica. The zero value disables them. It waits for
// in-flight Match calls to drain, so budgets never change mid-document.
func (p *FilterPool) SetLimits(l Limits) {
	p.mu.Lock()
	p.lim = l
	p.mu.Unlock()
	p.p.SetLimits(l.internal())
}

// Limits returns the configured budgets.
func (p *FilterPool) Limits() Limits {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lim
}

// Abstained reports whether the most recently finished Match call hit a
// resource budget under LimitAbstain and returned the verdicts decided
// before the breach.
//
// Deprecated: use the Match*Result methods, whose MatchResult.Abstained
// is the same call's flag — with concurrent Match calls this accessor
// reports whichever call finished last.
func (p *FilterPool) Abstained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.abstained
}

// MemStats returns the live-memory accounting of the busiest replica's
// last document.
//
// Deprecated: use the Match*Result methods, whose MatchResult.MemStats
// is the same call's accounting rather than a cross-call sample.
func (p *FilterPool) MemStats() MemStats { return p.p.MemStats() }

// finish applies the abstain policy to one Match call's outcome and
// records the flag.
func (p *FilterPool) finish(ids []string, err error, rd bool) ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out, abst, err := applyLimitPolicy(p.lim.Policy, ids, err)
	p.abstained = abst
	if rd {
		p.rdAbstained = abst
	}
	return out, err
}

// MatchBytes matches one in-memory document on an idle replica and
// returns the matching ids in insertion order — identical to the
// sequential FilterSet's answer. The returned slice is freshly
// allocated (calls run concurrently, so there is no shared buffer to
// reuse).
func (p *FilterPool) MatchBytes(doc []byte) ([]string, error) {
	ids, err := p.p.MatchBytes(doc)
	return p.finish(ids, err, false)
}

// MatchString is MatchBytes over a string.
func (p *FilterPool) MatchString(xml string) ([]string, error) {
	ids, err := p.p.MatchBytes([]byte(xml))
	return p.finish(ids, err, false)
}

// MatchBytesResult is MatchBytes returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions (AddExtract). Subtree fragments are zero-copy
// subslices of doc; attribute values are decoded copies. Safe for
// concurrent calls — the result carries this call's own flags, not
// shared last-call state.
func (p *FilterPool) MatchBytesResult(doc []byte) (MatchResult, error) {
	ids, fr, err := p.p.MatchBytesFrags(doc)
	ids, abst, err := p.finishFlags(ids, err, false)
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{
		MatchedIDs: ids,
		Fragments:  toFragments(fr, false),
		Abstained:  abst,
		MemStats:   p.p.MemStats(),
	}, nil
}

// MatchStringResult is MatchBytesResult over a string (the document
// bytes are freshly staged per call, so fragments never alias shared
// state).
func (p *FilterPool) MatchStringResult(xml string) (MatchResult, error) {
	return p.MatchBytesResult([]byte(xml))
}

// MatchReaderResult is MatchReader returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions, re-serialized to canonical form and freshly
// allocated, with this call's reader and memory accounting. Safe for
// concurrent calls.
func (p *FilterPool) MatchReaderResult(r io.Reader) (MatchResult, error) {
	p.mu.Lock()
	chunk := p.chunk
	p.mu.Unlock()
	ids, fr, rs, err := p.p.MatchReaderFrags(r, chunk)
	ids, abst, err := p.finishFlags(ids, err, true)
	if err != nil {
		return MatchResult{}, err
	}
	res := MatchResult{
		MatchedIDs:  ids,
		Fragments:   toFragments(fr, false),
		Abstained:   abst,
		ReaderStats: ReaderStats(rs),
		MemStats:    p.p.MemStats(),
	}
	res.ReaderStats.Abstained = abst
	return res, nil
}

// finishFlags is finish additionally returning this call's abstain flag
// (the stored one is last-call state a concurrent call may overwrite).
func (p *FilterPool) finishFlags(ids []string, err error, rd bool) ([]string, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out, abst, err := applyLimitPolicy(p.lim.Policy, ids, err)
	p.abstained = abst
	if rd {
		p.rdAbstained = abst
	}
	return out, abst, err
}

// MatchReader streams one document from r on a checked-out replica
// through the chunked byte path: sequential bounded-memory matching with
// mid-stream early exit, safe to call from any number of goroutines
// concurrently (each call owns one replica).
func (p *FilterPool) MatchReader(r io.Reader) ([]string, error) {
	p.mu.Lock()
	chunk := p.chunk
	p.mu.Unlock()
	ids, err := p.p.MatchReader(r, chunk)
	return p.finish(ids, err, true)
}

// SetChunkSize sets the read granularity of MatchReader (n <= 0 restores
// DefaultChunkSize).
func (p *FilterPool) SetChunkSize(n int) {
	p.mu.Lock()
	p.chunk = n
	p.mu.Unlock()
}

// ReaderStats returns the input accounting of the last MatchReader call
// (with concurrent calls, "last" is whichever finished most recently).
//
// Deprecated: use MatchReaderResult, whose MatchResult.ReaderStats is
// the same call's accounting rather than the last call's.
func (p *FilterPool) ReaderStats() ReaderStats {
	out := ReaderStats(p.p.ReadStats())
	p.mu.Lock()
	out.Abstained = p.rdAbstained
	p.mu.Unlock()
	return out
}

// Stats returns one replica's engine statistics (replicas are identical
// in structure).
func (p *FilterPool) Stats() FilterSetStats { return p.p.Stats() }

// AdaptiveFilterSet picks the parallel mode per document: documents
// below a size threshold — or subscription sets below a count threshold,
// where per-shard work is too thin to amortize the event broadcast —
// match on a FilterPool replica (document-parallel, no fan-out
// overhead), and everything else fans out on the event-sharded engine.
// Both halves share one symbol table and carry every subscription, so
// the routing decision is free and results are identical either way
// (and identical to the sequential FilterSet). MatchReader peeks the
// first threshold bytes to learn the size class before committing.
//
// An AdaptiveFilterSet owns worker goroutines: call Close when done.
type AdaptiveFilterSet struct {
	a *parallel.Auto
	// mu guards chunk, buf (the MatchString staging buffer), lim and the
	// abstain flags.
	mu          sync.Mutex
	chunk       int
	buf         []byte
	lim         Limits
	abstained   bool
	rdAbstained bool
}

// NewAdaptiveFilterSet returns an empty adaptive set with the given
// number of shards/replicas; workers < 1 selects GOMAXPROCS. The default
// thresholds (parallel.AutoSizeThreshold/AutoMinSubs) apply.
func NewAdaptiveFilterSet(workers int) *AdaptiveFilterSet {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &AdaptiveFilterSet{a: parallel.NewAuto(workers, 0, 0)}
}

// Add compiles a subscription under the given id on both halves. Ids
// must be unique. Queries outside the streamable fragment (see
// Query.NewFilter) are rejected.
func (s *AdaptiveFilterSet) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.a.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// AddExtract is Add with fragment extraction enabled on both halves:
// the Match*Result methods return the subscription's matched subtree as
// a Fragment whichever engine the size policy routes to. The boolean
// Match methods ignore the flag and keep their fast path.
func (s *AdaptiveFilterSet) AddExtract(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.a.AddExtract(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription, reporting whether it existed.
func (s *AdaptiveFilterSet) Remove(id string) bool { return s.a.Remove(id) }

// Len returns the number of subscriptions.
func (s *AdaptiveFilterSet) Len() int { return s.a.Len() }

// IDs returns the subscription ids in insertion order.
func (s *AdaptiveFilterSet) IDs() []string { return s.a.IDs() }

// Shards returns the worker count of each half.
func (s *AdaptiveFilterSet) Shards() int { return s.a.Shards() }

// SetLimits configures the per-document resource budgets (and breach
// policy) on both halves, so the routing decision never changes which
// budgets apply. The zero value disables them.
func (s *AdaptiveFilterSet) SetLimits(l Limits) {
	s.mu.Lock()
	s.lim = l
	s.mu.Unlock()
	s.a.SetLimits(l.internal())
}

// Limits returns the configured budgets.
func (s *AdaptiveFilterSet) Limits() Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lim
}

// Abstained reports whether the last Match call hit a resource budget
// under LimitAbstain and returned the verdicts decided before the
// breach.
//
// Deprecated: use the Match*Result methods, whose MatchResult.Abstained
// is the same call's flag rather than whatever call finished last.
func (s *AdaptiveFilterSet) Abstained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abstained
}

// MemStats returns the live-memory accounting of the half the last
// Match call ran on.
//
// Deprecated: use the Match*Result methods, whose MatchResult.MemStats
// is the same call's accounting rather than the last call's.
func (s *AdaptiveFilterSet) MemStats() MemStats { return s.a.MemStats() }

// finishLocked applies the abstain policy to one Match call's outcome
// and records the flag. Caller holds s.mu.
func (s *AdaptiveFilterSet) finishLocked(ids []string, err error, rd bool) ([]string, error) {
	out, abst, err := applyLimitPolicy(s.lim.Policy, ids, err)
	s.abstained = abst
	if rd {
		s.rdAbstained = abst
	}
	return out, err
}

func (s *AdaptiveFilterSet) finish(ids []string, err error, rd bool) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishLocked(ids, err, rd)
}

// finishFlags is finish additionally returning this call's abstain flag
// (the stored one is last-call state a concurrent call may overwrite).
func (s *AdaptiveFilterSet) finishFlags(ids []string, err error, rd bool) ([]string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, abst, err := applyLimitPolicy(s.lim.Policy, ids, err)
	s.abstained = abst
	if rd {
		s.rdAbstained = abst
	}
	return out, abst, err
}

// MatchBytes matches one in-memory document on the half the size policy
// picks, returning the matching ids in insertion order (identical to
// FilterSet.MatchBytes). Copy the slice if it must outlive the call.
func (s *AdaptiveFilterSet) MatchBytes(doc []byte) ([]string, error) {
	ids, err := s.a.MatchBytes(doc)
	return s.finish(ids, err, false)
}

// MatchString is MatchBytes over a string, staged through a reusable
// buffer (calls serialize on it).
func (s *AdaptiveFilterSet) MatchString(xml string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf[:0], xml...)
	ids, err := s.a.MatchBytes(s.buf)
	return s.finishLocked(ids, err, false)
}

// MatchBytesResult is MatchBytes returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions (AddExtract), whichever half the size policy routed
// to. Subtree fragments are zero-copy subslices of doc; attribute
// values are decoded copies. Safe for concurrent calls — the result
// carries this call's own flags, not shared last-call state.
func (s *AdaptiveFilterSet) MatchBytesResult(doc []byte) (MatchResult, error) {
	ids, fr, err := s.a.MatchBytesFrags(doc)
	ids, abst, err := s.finishFlags(ids, err, false)
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{
		MatchedIDs: ids,
		Fragments:  toFragments(fr, false),
		Abstained:  abst,
		MemStats:   s.a.MemStats(),
	}, nil
}

// MatchStringResult is MatchBytesResult over a string. The staging
// buffer is reused, so every fragment is freshly allocated and owned by
// the caller.
func (s *AdaptiveFilterSet) MatchStringResult(xml string) (MatchResult, error) {
	s.mu.Lock()
	s.buf = append(s.buf[:0], xml...)
	buf := s.buf
	s.mu.Unlock()
	ids, fr, err := s.a.MatchBytesFrags(buf)
	ids, abst, err := s.finishFlags(ids, err, false)
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{
		MatchedIDs: ids,
		Fragments:  toFragments(fr, true),
		Abstained:  abst,
		MemStats:   s.a.MemStats(),
	}, nil
}

// MatchReaderResult is MatchReader returning the unified MatchResult:
// matched ids plus the extracted subtrees of extraction-enabled
// subscriptions, re-serialized to canonical form on every route (even
// a fully staged small document — the staging buffer is recycled) and
// freshly allocated, with this call's reader and memory accounting.
// Safe for concurrent calls.
func (s *AdaptiveFilterSet) MatchReaderResult(r io.Reader) (MatchResult, error) {
	s.mu.Lock()
	chunk := s.chunk
	s.mu.Unlock()
	ids, fr, rs, err := s.a.MatchReaderFrags(r, chunk)
	ids, abst, err := s.finishFlags(ids, err, true)
	if err != nil {
		return MatchResult{}, err
	}
	res := MatchResult{
		MatchedIDs:  ids,
		Fragments:   toFragments(fr, false),
		Abstained:   abst,
		ReaderStats: ReaderStats(rs),
		MemStats:    s.a.MemStats(),
	}
	res.ReaderStats.Abstained = abst
	return res, nil
}

// MatchReader streams one document from r: documents ending within the
// size threshold match on a pooled replica; larger ones stream chunked —
// sequentially on a replica when the subscription set is below the count
// threshold (bounded memory without fan-out overhead), event-sharded
// otherwise (I/O, tokenization and matching overlap) — with mid-stream
// early exit once every verdict is decided.
func (s *AdaptiveFilterSet) MatchReader(r io.Reader) ([]string, error) {
	s.mu.Lock()
	chunk := s.chunk
	s.mu.Unlock()
	ids, err := s.a.MatchReader(r, chunk)
	return s.finish(ids, err, true)
}

// SetChunkSize sets the read granularity of MatchReader (n <= 0 restores
// DefaultChunkSize).
func (s *AdaptiveFilterSet) SetChunkSize(n int) {
	s.mu.Lock()
	s.chunk = n
	s.mu.Unlock()
}

// ReaderStats returns the input accounting of the last MatchReader call.
//
// Deprecated: use MatchReaderResult, whose MatchResult.ReaderStats is
// the same call's accounting rather than the last call's.
func (s *AdaptiveFilterSet) ReaderStats() ReaderStats {
	out := ReaderStats(s.a.ReadStats())
	s.mu.Lock()
	out.Abstained = s.rdAbstained
	s.mu.Unlock()
	return out
}

// LastMode reports which half the last Match call ran on: "shard" or
// "pool".
func (s *AdaptiveFilterSet) LastMode() string { return s.a.LastMode() }

// Stats returns the sharded half's aggregated engine statistics.
func (s *AdaptiveFilterSet) Stats() FilterSetStats { return s.a.Stats() }

// Close stops the worker goroutines. The set is unusable afterwards;
// Close is idempotent.
func (s *AdaptiveFilterSet) Close() { s.a.Close() }
