package streamxpath

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"streamxpath/internal/parallel"
)

// ParallelFilterSet is the multi-core FilterSet: subscriptions are
// hash-sharded across N independent copies of the shared dissemination
// engine, all bound to one concurrent symbol table. Each document is
// tokenized exactly once (on the calling goroutine, through the
// interned-symbol byte fast path) and its symbol events are fanned out
// to per-shard worker goroutines through reusable batched event rings;
// the per-shard match sets are merged back into subscription insertion
// order, so results are byte-identical to the sequential FilterSet on
// every document.
//
// This mode parallelizes one document at a time across cores — the right
// shape when the subscription set is large. Match calls from multiple
// goroutines are safe but serialize; to match many documents
// concurrently instead, use FilterPool.
//
// A ParallelFilterSet owns worker goroutines: call Close when done.
type ParallelFilterSet struct {
	s *parallel.Sharded
	// mu guards buf, the document staging buffer of MatchReader and
	// MatchString (the engine serializes Match calls itself, but the
	// staging happens before the engine is entered).
	mu  sync.Mutex
	buf []byte
}

// NewParallelFilterSet returns an empty set with the given number of
// shards; shards < 1 selects GOMAXPROCS.
func NewParallelFilterSet(shards int) *ParallelFilterSet {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	return &ParallelFilterSet{s: parallel.NewSharded(shards)}
}

// Add compiles a subscription under the given id and merges it into its
// shard's engine. Ids must be unique across the whole set. Queries
// outside the streamable fragment (see Query.NewFilter) are rejected.
func (s *ParallelFilterSet) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := s.s.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription, reporting whether it existed.
func (s *ParallelFilterSet) Remove(id string) bool { return s.s.Remove(id) }

// Len returns the number of subscriptions.
func (s *ParallelFilterSet) Len() int { return s.s.Len() }

// IDs returns the subscription ids in insertion order.
func (s *ParallelFilterSet) IDs() []string { return s.s.IDs() }

// Shards returns the shard count.
func (s *ParallelFilterSet) Shards() int { return s.s.Shards() }

// MatchBytes matches one in-memory document against every subscription
// and returns the matching ids in insertion order — the same answer, in
// the same order, as FilterSet.MatchBytes. The returned slice is reused
// by the next Match call on this set; copy it if it must outlive the
// call. It is non-nil even when empty.
func (s *ParallelFilterSet) MatchBytes(doc []byte) ([]string, error) {
	return s.s.MatchBytes(doc)
}

// MatchReader buffers the document from r and matches it through the
// parallel byte path. (Event sharding needs the whole document's symbol
// stream; callers with bounded-memory needs should use the sequential
// FilterSet.MatchReader.)
func (s *ParallelFilterSet) MatchReader(r io.Reader) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := readAll(r, s.buf[:0])
	s.buf = b
	if err != nil {
		return nil, err
	}
	return s.s.MatchBytes(s.buf)
}

// MatchString is MatchBytes over a string.
func (s *ParallelFilterSet) MatchString(xml string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf[:0], xml...)
	return s.s.MatchBytes(s.buf)
}

// Stats aggregates the shard engines' statistics (sizes and work sum
// across shards; MaxLevel is the maximum).
func (s *ParallelFilterSet) Stats() FilterSetStats { return s.s.Stats() }

// Close stops the shard worker goroutines. The set is unusable
// afterwards; Close is idempotent.
func (s *ParallelFilterSet) Close() { s.s.Close() }

// readAll appends r's contents to buf, reusing its capacity.
func readAll(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// FilterPool is the document-parallel dissemination engine: a pool of
// complete engine replicas, each carrying every subscription, matching
// whole documents independently. MatchBytes is safe to call from any
// number of goroutines concurrently — each call checks out an idle
// replica — so a document feed spreads across cores with no coordination
// beyond the checkout. All replicas share one concurrent symbol table,
// so the feed's name vocabulary is interned once, whichever replica sees
// a name first.
//
// Choose FilterPool when documents arrive faster than one core matches
// them (feeds of small documents); choose ParallelFilterSet when a
// single document must be matched against a very large subscription set
// as fast as possible.
type FilterPool struct {
	p *parallel.Pool
}

// NewFilterPool returns an empty pool with the given number of replica
// workers; workers < 1 selects GOMAXPROCS.
func NewFilterPool(workers int) *FilterPool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &FilterPool{p: parallel.NewPool(workers)}
}

// Add compiles a subscription under the given id on every replica.
// It waits for in-flight Match calls to drain.
func (p *FilterPool) Add(id, querySrc string) error {
	q, err := Compile(querySrc)
	if err != nil {
		return err
	}
	if err := p.p.Add(id, q.q); err != nil {
		return fmt.Errorf("streamxpath: subscription %q: %w", id, err)
	}
	return nil
}

// Remove deregisters a subscription from every replica, reporting
// whether it existed. It waits for in-flight Match calls to drain.
func (p *FilterPool) Remove(id string) bool { return p.p.Remove(id) }

// Len returns the number of subscriptions.
func (p *FilterPool) Len() int { return p.p.Len() }

// IDs returns the subscription ids in insertion order.
func (p *FilterPool) IDs() []string { return p.p.IDs() }

// Workers returns the replica count.
func (p *FilterPool) Workers() int { return p.p.Workers() }

// MatchBytes matches one in-memory document on an idle replica and
// returns the matching ids in insertion order — identical to the
// sequential FilterSet's answer. The returned slice is freshly
// allocated (calls run concurrently, so there is no shared buffer to
// reuse).
func (p *FilterPool) MatchBytes(doc []byte) ([]string, error) {
	return p.p.MatchBytes(doc)
}

// MatchString is MatchBytes over a string.
func (p *FilterPool) MatchString(xml string) ([]string, error) {
	return p.p.MatchBytes([]byte(xml))
}

// Stats returns one replica's engine statistics (replicas are identical
// in structure).
func (p *FilterPool) Stats() FilterSetStats { return p.p.Stats() }
