package streamxpath

import "streamxpath/internal/engine"

// Fragment is one extracted match: the id of the subscription it
// belongs to and the matched node's content — the element's subtree as
// XML for element-selecting queries, or the decoded attribute value for
// attribute-selecting ones (//item/@id yields the value, not
// id="...").
//
// Ownership depends on the call that produced it. MatchBytesResult
// returns element subtrees as zero-copy subslices of the caller's
// document buffer wherever the match came from a contiguous region —
// the fragment is valid exactly as long as that buffer is. Everything
// else (reader-path captures, attribute values, string-staged
// documents) is freshly allocated and owned by the caller outright.
type Fragment struct {
	// ID is the subscription id the fragment was extracted for.
	ID string
	// Data is the extracted content.
	Data []byte
}

// MatchResult is the unified outcome of one Match*Result call: the
// matched subscription ids, the extracted fragments of
// extraction-enabled subscriptions (AddExtract), and the call's own
// accounting — replacing the racy last-call accessors (Abstained,
// ReaderStats, MemStats), which read state a concurrent call may have
// since overwritten.
type MatchResult struct {
	// MatchedIDs holds the matched subscription ids in insertion order
	// (for a single-query Filter: the query source when it matched).
	// Reuse follows the wrapped method's contract — e.g.
	// FilterSet.MatchBytesResult reuses the slice across calls.
	MatchedIDs []string
	// Fragments holds the extracted subtrees of the matched
	// extraction-enabled subscriptions, in subscription insertion order.
	// At most one fragment per subscription: the document-order-first
	// match. Nil when no extraction subscription matched or the call's
	// boolean sibling was used.
	Fragments []Fragment
	// Abstained reports that a resource budget was breached under
	// LimitAbstain and the result degraded to the verdicts (and
	// finalized fragments) decided before the breach.
	Abstained bool
	// ReaderStats is the call's input accounting; zero for whole-buffer
	// calls.
	ReaderStats ReaderStats
	// MemStats is the live-memory accounting of the call's document.
	MemStats MemStats
}

// Fragment returns the extracted content for a subscription id, nil if
// the call produced none for it.
func (r *MatchResult) Fragment(id string) []byte {
	for i := range r.Fragments {
		if r.Fragments[i].ID == id {
			return r.Fragments[i].Data
		}
	}
	return nil
}

// toFragments converts engine fragments to the public form. Volatile
// data — aliasing engine scratch the next document overwrites — is
// always copied; copyAll additionally copies zero-copy document
// subslices, for callers whose document buffer is itself reused (the
// MatchString staging buffer).
func toFragments(fr []engine.Fragment, copyAll bool) []Fragment {
	if len(fr) == 0 {
		return nil
	}
	out := make([]Fragment, len(fr))
	for i, f := range fr {
		d := f.Data
		if f.Volatile || copyAll {
			d = append(make([]byte, 0, len(d)), d...)
		}
		out[i] = Fragment{ID: f.ID, Data: d}
	}
	return out
}
