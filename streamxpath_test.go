package streamxpath

import (
	"strings"
	"testing"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		q, d string
		want bool
	}{
		{"/a[b > 5]", "<a><b>6</b></a>", true},
		{"/a[b > 5]", "<a><b>4</b></a>", false},
		{"//item[keyword = \"go\"]", "<news><item><keyword>go</keyword></item></news>", true},
		// Non-streamable queries fall back to the in-memory evaluator.
		{"/a[b or c]", "<a><c/></a>", true},
		{"/a[not(b)]", "<a><c/></a>", true},
		{"/a[not(b)]", "<a><b/></a>", false},
	}
	for _, c := range cases {
		got, err := Match(c.q, c.d)
		if err != nil {
			t.Fatalf("Match(%s, %s): %v", c.q, c.d, err)
		}
		if got != c.want {
			t.Errorf("Match(%s, %s) = %v, want %v", c.q, c.d, got, c.want)
		}
	}
}

func TestMatchErrors(t *testing.T) {
	if _, err := Match("not a query", "<a/>"); err == nil {
		t.Error("bad query: want error")
	}
	if _, err := Match("/a", "<a><unclosed>"); err == nil {
		t.Error("bad document: want error")
	}
}

func TestFilterReuse(t *testing.T) {
	q := MustCompile("/feed/item[priority > 5]")
	f, err := q.NewFilter()
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{
		"<feed><item><priority>7</priority></item></feed>": true,
		"<feed><item><priority>2</priority></item></feed>": false,
		"<feed><other/></feed>":                            false,
	}
	for d, want := range docs {
		got, err := f.MatchString(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("MatchString(%s) = %v, want %v", d, got, want)
		}
	}
	s := f.Stats()
	if s.Events == 0 || s.EstimatedBits == 0 {
		t.Errorf("stats not populated: %+v", s)
	}
}

func TestMatchReader(t *testing.T) {
	q := MustCompile("//b")
	f, _ := q.NewFilter()
	got, err := f.MatchReader(strings.NewReader("<a><b/></a>"))
	if err != nil || !got {
		t.Errorf("MatchReader = %v, %v", got, err)
	}
	if _, err := f.MatchReader(strings.NewReader("<a>")); err == nil {
		t.Error("truncated document: want error")
	}
}

func TestEvaluate(t *testing.T) {
	q := MustCompile("/a[c]/b")
	vals, err := q.Evaluate("<a><c/><b>1</b><b>2</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "1" || vals[1] != "2" {
		t.Errorf("Evaluate = %v", vals)
	}
	vals2, err := q.EvaluateReader(strings.NewReader("<a><b>x</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals2) != 0 {
		t.Errorf("no c child: Evaluate = %v", vals2)
	}
	ok, err := q.MatchDocument("<a><c/><b>1</b></a>")
	if err != nil || !ok {
		t.Error("MatchDocument")
	}
}

func TestAnalyze(t *testing.T) {
	a := MustCompile("/a[c[.//e and f] and b > 5]").Analyze()
	if !a.RedundancyFree || a.FrontierSize != 3 || !a.Streamable {
		t.Errorf("analysis = %+v", a)
	}
	if a.Size != 6 {
		t.Errorf("size = %d, want 6", a.Size)
	}
	if a.ClosureFree {
		t.Error("query uses a descendant axis")
	}
	a2 := MustCompile("/a[b or c]").Analyze()
	if a2.RedundancyFree || a2.Streamable || len(a2.Issues) == 0 || a2.StreamableReason == "" {
		t.Errorf("analysis = %+v", a2)
	}
	a3 := MustCompile("//a[b and c]").Analyze()
	if !a3.Recursive {
		t.Error("//a[b and c] is in Recursive XPath")
	}
	a4 := MustCompile("/a/b").Analyze()
	if !a4.DepthSensitive || !a4.ClosureFree || !a4.PathConsistencyFree {
		t.Errorf("analysis = %+v", a4)
	}
}

func TestNewFilterRejects(t *testing.T) {
	if _, err := MustCompile("/a[b or c]").NewFilter(); err == nil {
		t.Error("disjunction: want filter compile error")
	}
}

func TestVerifyFrontierLowerBound(t *testing.T) {
	rep, err := MustCompile("/a[c[.//e and f] and b > 5]").VerifyFrontierLowerBound(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parameter != 3 || rep.FamilySize != 8 {
		t.Errorf("report = %+v", rep)
	}
	if rep.DistinctStates != 8 {
		t.Errorf("distinct states = %d, want 8", rep.DistinctStates)
	}
	if rep.MaxMessageBits < rep.LowerBoundBits {
		t.Errorf("filter state %d bits below the proven bound %d", rep.MaxMessageBits, rep.LowerBoundBits)
	}
	if rep.String() == "" {
		t.Error("String broken")
	}
	if _, err := MustCompile("/a[b or c]").VerifyFrontierLowerBound(0); err == nil {
		t.Error("non-RF query: want error")
	}
}

func TestVerifyRecursionLowerBound(t *testing.T) {
	rep, err := MustCompile("//a[b and c]").VerifyRecursionLowerBound(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parameter != 3 || rep.FamilySize != 8 || rep.DistinctStates != 8 {
		t.Errorf("report = %+v", rep)
	}
	if _, err := MustCompile("/a/b").VerifyRecursionLowerBound(3, 0); err == nil {
		t.Error("non-recursive query: want error")
	}
}

func TestVerifyDepthLowerBound(t *testing.T) {
	rep, err := MustCompile("/a/b").VerifyDepthLowerBound(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FamilySize < 8 || rep.DistinctStates != rep.FamilySize {
		t.Errorf("report = %+v", rep)
	}
	if _, err := MustCompile("//a").VerifyDepthLowerBound(12, 0); err == nil {
		t.Error("ineligible query: want error")
	}
}

func TestStreamEvaluator(t *testing.T) {
	q := MustCompile("/a[c]/b")
	se, err := q.NewStreamEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	se.OnValue(func(v string) { streamed = append(streamed, v) })
	vals, err := se.EvaluateString("<a><b>1</b><c/><b>2</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "1" || vals[1] != "2" {
		t.Errorf("vals = %v", vals)
	}
	if len(streamed) != 2 {
		t.Errorf("OnValue received %v", streamed)
	}
	s := se.Stats()
	if s.Emitted != 2 || s.PeakPendingValues < 1 {
		t.Errorf("stats = %+v", s)
	}
	// Streamed vs in-memory evaluation agree.
	ref, err := q.Evaluate("<a><b>1</b><c/><b>2</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(vals) {
		t.Errorf("reference %v != streamed %v", ref, vals)
	}
	// Reuse on a non-matching document.
	se.OnValue(nil)
	vals2, err := se.EvaluateString("<a><b>1</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals2) != 0 {
		t.Errorf("vals2 = %v", vals2)
	}
	if se.Stats().Dropped != 1 {
		t.Errorf("dropped = %d", se.Stats().Dropped)
	}
}

func TestStreamEvaluatorRejects(t *testing.T) {
	if _, err := MustCompile("/a[b or c]/d").NewStreamEvaluator(); err == nil {
		t.Error("disjunction: want error")
	}
}

func TestFilterSet(t *testing.T) {
	s := NewFilterSet()
	subs := map[string]string{
		"go-fans":  `//item[keyword = "go"]`,
		"urgent":   `//item[priority > 8]`,
		"any-item": `//item`,
		"xml-fans": `//item[keyword = "xml"]`,
	}
	for id, q := range subs {
		if err := s.Add(id, q); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	doc := `<news><item><keyword>go</keyword><priority>9</priority></item></news>`
	got, err := s.MatchString(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"go-fans": true, "urgent": true, "any-item": true}
	if len(got) != len(want) {
		t.Fatalf("matched %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected match %q", id)
		}
	}
	// Reuse on a second document.
	got2, err := s.MatchString(`<news><item><keyword>xml</keyword><priority>1</priority></item></news>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 { // any-item, xml-fans
		t.Errorf("second doc matched %v", got2)
	}
	// Per-subscription answers agree with one-shot Match.
	for id, q := range subs {
		one, err := Match(q, doc)
		if err != nil {
			t.Fatal(err)
		}
		inSet := false
		for _, g := range got {
			if g == id {
				inSet = true
			}
		}
		if one != inSet {
			t.Errorf("%s: FilterSet=%v Match=%v", id, inSet, one)
		}
	}
}

func TestFilterSetErrors(t *testing.T) {
	s := NewFilterSet()
	if err := s.Add("a", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", "/b"); err == nil {
		t.Error("duplicate id: want error")
	}
	if err := s.Add("b", "/a[x or y]"); err == nil {
		t.Error("non-streamable subscription: want error")
	}
	if err := s.Add("c", "not a query"); err == nil {
		t.Error("bad query: want error")
	}
	if _, err := s.MatchString("<unclosed>"); err == nil {
		t.Error("bad document: want error")
	}
}

func TestAnalyzeRedundancies(t *testing.T) {
	a := MustCompile("/a[b > 5 and b > 6]").Analyze()
	if len(a.Redundancies) != 1 {
		t.Fatalf("redundancies = %v", a.Redundancies)
	}
	if a2 := MustCompile("/a[b and c]").Analyze(); len(a2.Redundancies) != 0 {
		t.Errorf("unexpected redundancies: %v", a2.Redundancies)
	}
}
