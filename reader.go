package streamxpath

import (
	"io"

	"streamxpath/internal/sax"
)

// DefaultChunkSize is the read granularity of the chunked reader entry
// points (Filter.MatchReader, FilterSet.MatchReader,
// ParallelFilterSet.MatchReader, StreamEvaluator.EvaluateReader) when no
// chunk size has been set.
const DefaultChunkSize = sax.DefaultChunkSize

// ReaderStats describes the last MatchReader/EvaluateReader call of the
// object that returned it: how much input was pulled from the reader,
// how much of it the tokenizer consumed, and whether the call stopped
// early because the verdict was already decided.
type ReaderStats struct {
	// BytesRead is the number of bytes read from the io.Reader.
	BytesRead int64
	// BytesConsumed is the number of document bytes fully tokenized —
	// on early exit, how much of the document the verdict needed.
	BytesConsumed int64
	// Chunks is the number of non-empty reads.
	Chunks int
	// EarlyExit reports that reading stopped before end of input because
	// every verdict was decided. The unread remainder (and any unread
	// suffix of the last chunk) was not validated.
	EarlyExit bool
	// DecidedNegative refines EarlyExit: at least one verdict was decided
	// negatively — the dead-state analysis proved no continuation of the
	// document could match it. False on an all-positive exit (every
	// subscription, or the single query, had already matched) and
	// whenever EarlyExit is false.
	DecidedNegative bool
	// Abstained reports that the call hit a resource budget under
	// LimitAbstain and degraded to the verdicts decided before the
	// breach.
	Abstained bool
}

// streamDoc drives one document from r through the chunked tokenizer
// (see sax.StreamTokenizer.Drive), recording the input accounting into
// st. The caller resets tok and the consumer first, and fills
// st.DecidedNegative afterwards (only the consumer knows the verdicts).
func streamDoc(r io.Reader, tok *sax.StreamTokenizer, chunkSize int, st *ReaderStats, process func(sax.ByteEvent) error, decided func() bool) (bool, error) {
	var ss sax.StreamStats
	sawEnd, err := tok.Drive(r, chunkSize, &ss, process, nil, decided)
	*st = ReaderStats{
		BytesRead:     ss.BytesRead,
		BytesConsumed: ss.BytesConsumed,
		Chunks:        ss.Chunks,
		EarlyExit:     ss.EarlyExit,
	}
	return sawEnd, err
}
