// Lowerbounds: builds the paper's three lower-bound document families end
// to end and machine-verifies their claims — the executable form of
// Theorems 4.2/7.1 (query frontier size), 4.5/7.4 (recursion depth), and
// 4.6/7.14 (document depth).
package main

import (
	"fmt"
	"log"

	"streamxpath"
)

func main() {
	fmt.Println("1. Query frontier size (Theorems 4.2 / 7.1)")
	fmt.Println("   Q = /a[c[.//e and f] and b > 5], FS(Q) = 3")
	fmt.Println("   The fooling set has one split document per subset of the frontier")
	fmt.Println("   {e, f, b}; all 8 match Q, and every crossover pair has a failing member.")
	q1 := streamxpath.MustCompile("/a[c[.//e and f] and b > 5]")
	rep1, err := q1.VerifyFrontierLowerBound(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   VERIFIED: %s\n\n", rep1)

	fmt.Println("2. Document recursion depth (Theorems 4.5 / 7.4)")
	fmt.Println("   Q = //a[b and c]. Each DISJ input (s, t) becomes r nested a-elements;")
	fmt.Println("   level i gets a b iff s_i = 1 (Alice's half) and a c iff t_i = 1 (Bob's).")
	fmt.Println("   The document matches iff the sets intersect, so memory = Ω(r).")
	q2 := streamxpath.MustCompile("//a[b and c]")
	for _, r := range []int{2, 4, 6} {
		rep, err := q2.VerifyRecursionLowerBound(r, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   r=%d VERIFIED: %s\n", r, rep)
	}
	fmt.Println()

	fmt.Println("3. Document depth (Theorems 4.6 / 7.14)")
	fmt.Println("   Q = /a/b. D_i pads the match with two depth-i chains of Z elements;")
	fmt.Println("   splicing D_j's middle into D_i re-parents b under a Z and kills the")
	fmt.Println("   match, so the algorithm must remember the depth: Ω(log d) bits.")
	q3 := streamxpath.MustCompile("/a/b")
	for _, d := range []int{8, 32, 128} {
		rep, err := q3.VerifyDepthLowerBound(d, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   d=%d VERIFIED: %s\n", d, rep)
	}
	fmt.Println()

	fmt.Println("In each experiment, 'filter: states' counts the distinct serialized")
	fmt.Println("states our streaming filter reached at the adversarial cut — it always")
	fmt.Println("equals the family size, certifying that the filter (like any correct")
	fmt.Println("algorithm) pays the proven memory lower bound.")
}
