// Streamingeval: full query evaluation over a stream — the extension the
// paper's Section 1 mentions and its follow-up work analyzes. Unlike
// filtering, evaluation must buffer candidate values until their governing
// predicates resolve; this example shows values being released the moment
// the evidence arrives, and the buffering growing when evidence is
// delayed.
package main

import (
	"fmt"
	"log"
	"strings"

	"streamxpath"
)

func main() {
	// Select order ids from orders that contain an express shipping tag.
	q := streamxpath.MustCompile(`/orders/order[shipping = "express"]/id`)
	se, err := q.NewStreamEvaluator()
	if err != nil {
		log.Fatal(err)
	}

	// The id streams past BEFORE the shipping element: it must be
	// buffered until the predicate resolves, then is emitted immediately
	// (not at document end).
	doc := `<orders>` +
		`<order><id>A-1</id><shipping>express</shipping></order>` +
		`<order><id>A-2</id><shipping>ground</shipping></order>` +
		`<order><id>A-3</id><shipping>express</shipping></order>` +
		`</orders>`

	fmt.Println("query:", q)
	fmt.Println("doc:  ", doc)
	fmt.Println()
	se.OnValue(func(v string) {
		fmt.Printf("  emitted %q (as soon as its order's predicate resolved)\n", v)
	})
	vals, err := se.EvaluateString(doc)
	if err != nil {
		log.Fatal(err)
	}
	s := se.Stats()
	fmt.Printf("\nresults: %v\n", vals)
	fmt.Printf("stats:   emitted=%d dropped=%d peakPending=%d peakBuffered=%dB\n",
		s.Emitted, s.Dropped, s.PeakPendingValues, s.PeakBufferedBytes)

	// Buffering grows with how long the evidence is delayed: n ids before
	// one confirming element means n pending values — the inherent
	// buffering of full evaluation (filtering never needs this).
	fmt.Println("\nbuffering vs. evidence delay (query /a[c]/b):")
	q2 := streamxpath.MustCompile("/a[c]/b")
	se2, err := q2.NewStreamEvaluator()
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{1, 10, 100, 1000} {
		var b strings.Builder
		b.WriteString("<a>")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "<b>v%d</b>", i)
		}
		b.WriteString("<c/></a>")
		if _, err := se2.EvaluateString(b.String()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d values before <c/>: peak pending = %4d, peak buffered = %5dB\n",
			n, se2.Stats().PeakPendingValues, se2.Stats().PeakBufferedBytes)
	}
}
