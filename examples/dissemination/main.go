// Dissemination: the selective-dissemination workload that motivates the
// paper's introduction (Altinel & Franklin's XFilter scenario, ref [1]):
// a stream of documents matched against many standing subscriptions. The
// subscriptions are compiled into ONE shared engine (a prefix-sharing
// combined NFA for linear queries plus a shared frontier trie for
// predicated ones), so each feed document is tokenized and evaluated in a
// single pass whose per-event cost depends on how much structure the
// subscriptions share — not on how many there are.
//
// Feed documents arrive as byte slices and go through MatchBytes, the
// interned-symbol fast path: names are interned once into the engine's
// shared symbol table and every layer dispatches on integer symbols, so
// the steady-state matching loop allocates nothing — which the
// throughput report at the end measures on this very workload.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"streamxpath"
)

func main() {
	set := streamxpath.NewFilterSet()
	named := []struct{ user, q string }{
		{"alice", `//item[keyword = "go" and priority > 6]`},
		{"bob", `//item[keyword = "xml"]`},
		{"carol", `//item[priority > 8]`},
		{"dave", `//item[keyword = "theory" and .//p]`},
		{"erin", `//item[contains(title, "breaking")]`},
	}
	for _, s := range named {
		if err := set.Add(s.user, s.q); err != nil {
			log.Fatalf("%s: %v", s.user, err)
		}
	}
	// A crowd of subscribers watching individual topic channels: all 500
	// queries share the //news/item prefix, which the engine's index
	// materializes exactly once.
	for i := 0; i < 500; i++ {
		q := fmt.Sprintf("//news/item/topic%d", i)
		if err := set.Add(fmt.Sprintf("crowd%03d", i), q); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	keywords := []string{"go", "xml", "theory", "systems"}
	fmt.Printf("incoming feed -> notified subscribers (%d standing subscriptions)\n", set.Len())
	fmt.Println(strings.Repeat("-", 60))
	for i := 0; i < 8; i++ {
		doc := makeFeed(rng, i, keywords)
		notified, err := set.MatchBytes(doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("doc %d (%d bytes) -> %v\n", i, len(doc), notified)
	}

	fmt.Println(strings.Repeat("-", 60))
	st := set.Stats()
	fmt.Println("shared engine state:")
	fmt.Printf("  subscriptions:     %d (%d on the combined NFA, %d on the frontier trie)\n",
		st.Subscriptions, st.NFARouted, st.TrieRouted)
	fmt.Printf("  location steps:    %d across all subscriptions\n", st.SpineSteps)
	fmt.Printf("  shared states:     %d (prefix sharing: %.1fx)\n",
		st.SharedStates, float64(st.SpineSteps)/float64(st.SharedStates))
	fmt.Printf("  lazy DFA:          %d states, %d memoized transitions\n", st.DFAStates, st.DFATransitions)
	fmt.Printf("  last doc:          %d tuple visits, peak %d tuples, peak buffer %dB\n",
		st.TupleVisits, st.PeakTuples, st.PeakBufferBytes)

	// The standing workload can change between documents.
	set.Remove("bob")
	if err := set.Add("frank", `//item[priority > 2 and keyword = "systems"]`); err != nil {
		log.Fatal(err)
	}
	notified, err := set.MatchBytes(makeFeed(rng, 99, keywords))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Remove(bob)+Add(frank), next doc -> %v\n", notified)

	// Throughput of the warm interned-symbol fast path on this workload.
	doc := makeFeed(rng, 100, keywords)
	const iters = 5000
	if _, err := set.MatchBytes(doc); err != nil { // warm DFA rows and scratch
		log.Fatal(err)
	}
	events := set.Stats().Events
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := set.MatchBytes(doc); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := float64(events) * iters
	fmt.Printf("\nwarm fast path: %d docs x %d trie events: %.2fM events/sec, %.4f allocs/event\n",
		iters, events, total/elapsed.Seconds()/1e6, float64(m1.Mallocs-m0.Mallocs)/total)
}

// makeFeed builds one feed document with a few items, as raw bytes for
// the MatchBytes fast path.
func makeFeed(rng *rand.Rand, id int, keywords []string) []byte {
	var b strings.Builder
	b.WriteString("<news>")
	for j := 0; j < 3; j++ {
		title := fmt.Sprintf("story %d-%d", id, j)
		if rng.Intn(4) == 0 {
			title = "breaking: " + title
		}
		fmt.Fprintf(&b, "<item><title>%s</title><keyword>%s</keyword><priority>%d</priority><topic%d/><body><p>%s</p></body></item>",
			title, keywords[rng.Intn(len(keywords))], rng.Intn(10), rng.Intn(500), strings.Repeat("text ", 10))
	}
	b.WriteString("</news>")
	return []byte(b.String())
}
