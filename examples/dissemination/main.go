// Dissemination: the selective-dissemination workload that motivates the
// paper's introduction (Altinel & Franklin's XFilter scenario, ref [1]):
// a stream of documents is matched against many standing subscription
// queries, each compiled once and reused, with per-subscription memory
// bounded by the paper's Theorem 8.8 rather than by document size.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"streamxpath"
)

// subscription pairs a user with a standing filter.
type subscription struct {
	user   string
	source string
	filter *streamxpath.Filter
}

func main() {
	subs := []struct{ user, q string }{
		{"alice", `//item[keyword = "go" and priority > 6]`},
		{"bob", `//item[keyword = "xml"]`},
		{"carol", `//item[priority > 8]`},
		{"dave", `//item[keyword = "theory" and .//p]`},
		{"erin", `//item[contains(title, "breaking")]`},
	}
	var active []subscription
	for _, s := range subs {
		q, err := streamxpath.Compile(s.q)
		if err != nil {
			log.Fatalf("%s: %v", s.user, err)
		}
		f, err := q.NewFilter()
		if err != nil {
			log.Fatalf("%s: %v", s.user, err)
		}
		active = append(active, subscription{user: s.user, source: s.q, filter: f})
	}

	rng := rand.New(rand.NewSource(7))
	keywords := []string{"go", "xml", "theory", "systems"}
	fmt.Println("incoming feed -> notified subscribers")
	fmt.Println(strings.Repeat("-", 60))
	for i := 0; i < 8; i++ {
		doc := makeFeed(rng, i, keywords)
		var notified []string
		for _, sub := range active {
			ok, err := sub.filter.MatchString(doc)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				notified = append(notified, sub.user)
			}
		}
		fmt.Printf("doc %d (%d bytes) -> %v\n", i, len(doc), notified)
	}

	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("per-subscription peak memory (independent of document size):")
	for _, sub := range active {
		s := sub.filter.Stats()
		fmt.Printf("  %-6s %-46s %4d bits\n", sub.user, sub.source, s.EstimatedBits)
	}

	// At scale, FilterSet shares one tokenizer pass across all
	// subscriptions and stops feeding filters whose match is already
	// definitive — the way a real dissemination engine would run.
	set := streamxpath.NewFilterSet()
	for _, s := range subs {
		if err := set.Add(s.user, s.q); err != nil {
			log.Fatal(err)
		}
	}
	ids, err := set.MatchString(makeFeed(rng, 99, keywords))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFilterSet (single pass, %d subscriptions) matched: %v\n", set.Len(), ids)
}

// makeFeed builds one feed document with a few items.
func makeFeed(rng *rand.Rand, id int, keywords []string) string {
	var b strings.Builder
	b.WriteString("<news>")
	for j := 0; j < 3; j++ {
		title := fmt.Sprintf("story %d-%d", id, j)
		if rng.Intn(4) == 0 {
			title = "breaking: " + title
		}
		fmt.Fprintf(&b, "<item><title>%s</title><keyword>%s</keyword><priority>%d</priority><body><p>%s</p></body></item>",
			title, keywords[rng.Intn(len(keywords))], rng.Intn(10), strings.Repeat("text ", 10))
	}
	b.WriteString("</news>")
	return b.String()
}
