// Dissemination: the selective-dissemination workload that motivates the
// paper's introduction (Altinel & Franklin's XFilter scenario, ref [1]):
// a stream of documents matched against many standing subscriptions. The
// subscriptions are compiled into ONE shared engine (a prefix-sharing
// combined NFA for linear queries plus a shared frontier trie for
// predicated ones), so each feed document is tokenized and evaluated in a
// single pass whose per-event cost depends on how much structure the
// subscriptions share — not on how many there are.
//
// Feed documents arrive as byte slices and go through MatchBytes, the
// interned-symbol fast path: names are interned once into the engine's
// shared symbol table and every layer dispatches on integer symbols, so
// the steady-state matching loop allocates nothing — which the
// throughput report at the end measures on this very workload.
//
// The closing section scales the same workload out across cores with the
// two parallel engines of internal/parallel: the event-sharded
// ParallelFilterSet (subscriptions split across engine shards, each
// document fanned out to them) and the document-parallel FilterPool
// (full engine replicas matching whole documents concurrently).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"streamxpath"
)

// subscriptions returns the example's standing workload: a few named
// predicated subscriptions plus a 500-strong crowd of topic watchers
// sharing the //news/item prefix, which the engine's index materializes
// exactly once.
func subscriptions() []struct{ user, q string } {
	subs := []struct{ user, q string }{
		{"alice", `//item[keyword = "go" and priority > 6]`},
		{"bob", `//item[keyword = "xml"]`},
		{"carol", `//item[priority > 8]`},
		{"dave", `//item[keyword = "theory" and .//p]`},
		{"erin", `//item[contains(title, "breaking")]`},
	}
	for i := 0; i < 500; i++ {
		subs = append(subs, struct{ user, q string }{
			fmt.Sprintf("crowd%03d", i), fmt.Sprintf("//news/item/topic%d", i),
		})
	}
	return subs
}

func main() {
	set := streamxpath.NewFilterSet()
	for _, s := range subscriptions() {
		if err := set.Add(s.user, s.q); err != nil {
			log.Fatalf("%s: %v", s.user, err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	keywords := []string{"go", "xml", "theory", "systems"}
	fmt.Printf("incoming feed -> notified subscribers (%d standing subscriptions)\n", set.Len())
	fmt.Println(strings.Repeat("-", 60))
	for i := 0; i < 8; i++ {
		doc := makeFeed(rng, i, keywords)
		notified, err := set.MatchBytes(doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("doc %d (%d bytes) -> %v\n", i, len(doc), notified)
	}

	// Fragment extraction: a subscription registered with AddExtract gets
	// the matched element's whole subtree back alongside the verdict —
	// the content-based-routing primitive (deliver the story itself, not
	// just the fact that it matched). MatchBytesResult returns the
	// fragment as a zero-copy subslice of the document buffer.
	if err := set.AddExtract("router", `//item[priority > 7]`); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		doc := makeFeed(rng, 200+i, keywords)
		res, err := set.MatchBytesResult(doc)
		if err != nil {
			log.Fatal(err)
		}
		if frag := res.Fragment("router"); frag != nil {
			fmt.Printf("\nextracted for router (doc-order-first match of %d ids):\n  %s\n",
				len(res.MatchedIDs), frag)
			break
		}
	}
	set.Remove("router")

	fmt.Println(strings.Repeat("-", 60))
	st := set.Stats()
	fmt.Println("shared engine state:")
	fmt.Printf("  subscriptions:     %d (%d on the combined NFA, %d on the frontier trie)\n",
		st.Subscriptions, st.NFARouted, st.TrieRouted)
	fmt.Printf("  location steps:    %d across all subscriptions\n", st.SpineSteps)
	fmt.Printf("  shared states:     %d (prefix sharing: %.1fx)\n",
		st.SharedStates, float64(st.SpineSteps)/float64(st.SharedStates))
	fmt.Printf("  lazy DFA:          %d states, %d memoized transitions\n", st.DFAStates, st.DFATransitions)
	fmt.Printf("  last doc:          %d tuple visits, peak %d tuples, peak buffer %dB\n",
		st.TupleVisits, st.PeakTuples, st.PeakBufferBytes)

	// The standing workload can change between documents.
	set.Remove("bob")
	if err := set.Add("frank", `//item[priority > 2 and keyword = "systems"]`); err != nil {
		log.Fatal(err)
	}
	notified, err := set.MatchBytes(makeFeed(rng, 99, keywords))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Remove(bob)+Add(frank), next doc -> %v\n", notified)

	// Throughput of the warm interned-symbol fast path on this workload.
	doc := makeFeed(rng, 100, keywords)
	const iters = 5000
	if _, err := set.MatchBytes(doc); err != nil { // warm DFA rows and scratch
		log.Fatal(err)
	}
	events := set.Stats().Events
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := set.MatchBytes(doc); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := float64(events) * iters
	fmt.Printf("\nwarm fast path: %d docs x %d trie events: %.2fM events/sec, %.4f allocs/event\n",
		iters, events, total/elapsed.Seconds()/1e6, float64(m1.Mallocs-m0.Mallocs)/total)

	// Scaling out: the same subscriptions and feed on the two parallel
	// engines. The sharded set splits the subscription work of each
	// document across engine shards; the pool matches whole documents
	// concurrently on engine replicas. Both return exactly the sequential
	// ids. On a multi-core machine both beat the sequential number; with
	// GOMAXPROCS=1 they only show their synchronization overhead.
	workers := runtime.GOMAXPROCS(0)
	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("scaling out across %d worker(s):\n", workers)

	seqRate := float64(iters) / elapsed.Seconds()
	fmt.Printf("  sequential FilterSet:      %8.0f docs/sec\n", seqRate)

	pset := streamxpath.NewParallelFilterSet(workers)
	defer pset.Close()
	for _, s := range subscriptions() {
		if err := pset.Add(s.user, s.q); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := pset.MatchBytes(doc); err != nil { // compile + warm
		log.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := pset.MatchBytes(doc); err != nil {
			log.Fatal(err)
		}
	}
	shardedRate := float64(iters) / time.Since(start).Seconds()
	fmt.Printf("  event-sharded (%d shards): %8.0f docs/sec (%.2fx)\n",
		pset.Shards(), shardedRate, shardedRate/seqRate)

	pool := streamxpath.NewFilterPool(workers)
	for _, s := range subscriptions() {
		if err := pool.Add(s.user, s.q); err != nil {
			log.Fatal(err)
		}
	}
	// Warm every replica (the idle ring is FIFO, so this visits each).
	for w := 0; w < pool.Workers(); w++ {
		if _, err := pool.MatchBytes(doc); err != nil {
			log.Fatal(err)
		}
	}
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/workers; i++ {
				if _, err := pool.MatchBytes(doc); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	poolRate := float64(iters/workers*workers) / time.Since(start).Seconds()
	fmt.Printf("  document pool (%d reps):   %8.0f docs/sec (%.2fx)\n",
		pool.Workers(), poolRate, poolRate/seqRate)
}

// makeFeed builds one feed document with a few items, as raw bytes for
// the MatchBytes fast path.
func makeFeed(rng *rand.Rand, id int, keywords []string) []byte {
	var b strings.Builder
	b.WriteString("<news>")
	for j := 0; j < 3; j++ {
		title := fmt.Sprintf("story %d-%d", id, j)
		if rng.Intn(4) == 0 {
			title = "breaking: " + title
		}
		fmt.Fprintf(&b, "<item><title>%s</title><keyword>%s</keyword><priority>%d</priority><topic%d/><body><p>%s</p></body></item>",
			title, keywords[rng.Intn(len(keywords))], rng.Intn(10), rng.Intn(500), strings.Repeat("text ", 10))
	}
	b.WriteString("</news>")
	return []byte(b.String())
}
