// Tracer: reproduces the example run of the paper's Section 8.4 (Fig. 22):
// the streaming filter processes /a[c[.//e and f] and b] over
// <a><c><d/><e/><f/></c><c/><b/></a>, printing the frontier table after
// every SAX event in the figure's (level, ntest, matched) format.
package main

import (
	"fmt"

	"streamxpath/internal/core"
	"streamxpath/internal/query"
	"streamxpath/internal/sax"
)

func main() {
	q := query.MustParse("/a[c[.//e and f] and b]")
	doc := "<a><c><d/><e/><f/></c><c/><b/></a>"
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("document: %s\n\n", doc)
	fmt.Printf("%-4s %-8s %s\n", "no.", "event", "frontier (level, ntest, matched)")

	f := core.MustCompile(q)
	i := 0
	f.Trace = func(e sax.Event, f *core.Filter) {
		fmt.Printf("%-4d %-8s %s\n", i, e.String(), f.FrontierString())
		i++
	}
	matched, err := f.ProcessAll(sax.MustParse(doc))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nresult: match = %v (the root's matched flag, as in Fig. 22)\n", matched)
	fmt.Printf("stats:  %s\n", f.Stats())

	fmt.Println("\nThe two 'interesting events' of Section 8.4:")
	fmt.Println(" - event 4 (<d>): d matches nothing in the frontier; only the level moves.")
	fmt.Println(" - event 11 (second <c>): c is already matched, so the new c element is")
	fmt.Println("   ignored instead of opening another candidate scope.")
}
