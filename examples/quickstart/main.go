// Quickstart: compile a Forward XPath query, filter documents in one
// streaming pass, and inspect the query's theoretical properties.
package main

import (
	"fmt"
	"log"

	"streamxpath"
)

func main() {
	// The running example of the paper (Fig. 2, minus the output step).
	q, err := streamxpath.Compile("/a[c[.//e and f] and b > 5]")
	if err != nil {
		log.Fatal(err)
	}

	f, err := q.NewFilter()
	if err != nil {
		log.Fatal(err)
	}

	docs := []string{
		"<a><c><e/><f/></c><b>6</b></a>",         // matches
		"<a><c><x><e/></x><f/></c><b>99</b></a>", // matches (e via descendant)
		"<a><c><f/></c><b>6</b></a>",             // no e
		"<a><c><e/><f/></c><b>5</b></a>",         // b not > 5
	}
	for _, d := range docs {
		matched, err := f.MatchString(d)
		if err != nil {
			log.Fatal(err)
		}
		s := f.Stats()
		fmt.Printf("%-45s -> %-5v (frontier %d tuples, %d bits)\n", d, matched, s.PeakFrontierTuples, s.EstimatedBits)
	}

	// Full evaluation (non-streaming) returns selected values.
	q2 := streamxpath.MustCompile("/a[c[.//e and f] and b > 5]/b")
	vals, err := q2.Evaluate("<a><c><e/><f/></c><b>6</b></a>")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFULLEVAL(%s) = %v\n", q2, vals)

	// Query analysis: the paper's quantities.
	a := q.Analyze()
	fmt.Printf("\nanalysis: |Q|=%d FS(Q)=%d redundancy-free=%v streamable=%v\n",
		a.Size, a.FrontierSize, a.RedundancyFree, a.Streamable)
	fmt.Println("=> any streaming algorithm needs at least FS(Q) bits on some document (Theorem 7.1)")
}
